"""Scatter-gather parity: any shard count, any worker count, same bytes.

The acceptance contract for the sharded engine: for every query type,
``db.query()`` on a ``ShardedSegmentStore(n_shards=k)`` database is
*byte-identical* (``QueryMatch`` is frozen; ``==`` compares every
field, deviation floats included) to both the PR 2 single store and the
legacy per-sequence oracle — including after interleaved insert/delete
— and the thread-pooled executor returns the same answer for every
worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import Sequence
from repro.core.tolerance import DimensionDeviation, grade_deviations
from repro.engine import ParallelExecutor, ProcessParallelExecutor
from repro.query import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.query.queries import Query
from repro.query.results import QueryMatch
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus, goalpost_fever, k_peak_sequence

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"
SHARD_COUNTS = [1, 2, 7]


def make_db(n_shards=None, max_workers=None, backend=None):
    return SequenceDatabase(
        breaker=InterpolationBreaker(0.5),
        n_shards=n_shards,
        max_workers=max_workers,
        backend=backend,
    )


def corpus():
    return fever_corpus(n_two_peak=6, n_one_peak=4, n_three_peak=4)


QUERIES = [
    PatternQuery(GOALPOST),
    PatternQuery("(0|-)* + (0|-)*", collapse_runs=False),
    PeakCountQuery(2, count_tolerance=1),
    IntervalQuery(12.0, 2.0),
    SteepnessQuery(3.0, slope_tolerance=1.5),
    ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5),
    ExemplarQuery(k_peak_sequence([6.0, 18.0], noise=0.0), epsilon=0.5),
]


@pytest.fixture(scope="module")
def single_db():
    db = make_db()
    db.insert_all(corpus())
    return db


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def sharded_db(request):
    db = make_db(n_shards=request.param)
    db.insert_all(corpus())
    return db


class TestShardCountParity:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
    def test_matches_byte_identical(self, single_db, sharded_db, query):
        for include_approximate in (True, False):
            sharded = sharded_db.query(query, include_approximate, cache=False)
            single = single_db.query(query, include_approximate, cache=False)
            legacy = single_db.query(query, include_approximate, engine=False)
            assert sharded == single == legacy

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
    def test_explain_stage_verdicts_identical(self, single_db, sharded_db, query):
        # The stage list and cache verdict must agree for every shard
        # count; the trailing generation counter is store-shape-specific
        # (a sharded store rolls up per-shard counters), so compare up
        # to it.
        def stages(text):
            return text.rsplit(" @ generation", 1)[0]

        assert stages(sharded_db.explain(query)) == stages(single_db.explain(query))

    def test_shape_plans_vectorized_grade(self, sharded_db):
        explain = sharded_db.explain(ShapeQuery(goalpost_fever()))
        assert "columnar-prefilter" in explain
        assert "vectorized-grade" in explain
        assert "residual-grade" not in explain


class TestParityAfterMutation:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_interleaved_insert_delete(self, n_shards):
        reference = make_db()
        sharded = make_db(n_shards=n_shards)
        for db in (reference, sharded):
            db.insert_all(corpus())
        script = [
            ("delete", 0),
            ("delete", 5),
            ("insert", k_peak_sequence([8.0, 16.0], noise=0.1, name="late-a")),
            ("delete", 10),
            ("insert", k_peak_sequence([7.0, 14.0, 21.0], noise=0.1, name="late-b")),
            ("delete", 14),
        ]
        for action, payload in script:
            for db in (reference, sharded):
                if action == "delete":
                    db.delete(payload)
                else:
                    db.insert(payload)
            sharded.store.check_consistency()
            for query in QUERIES:
                assert sharded.query(query, cache=False) == reference.query(
                    query, cache=False
                ) == reference.query(query, engine=False)


class TestWorkerDeterminism:
    @pytest.mark.parametrize("max_workers", [1, 2, 8])
    def test_worker_count_never_changes_results(self, single_db, max_workers):
        db = make_db(n_shards=5, max_workers=max_workers)
        db.insert_all(corpus())
        assert isinstance(db.executor, ParallelExecutor) == (max_workers > 1)
        for query in QUERIES:
            assert db.query(query, cache=False) == single_db.query(query, cache=False)

    def test_repeated_runs_are_stable(self):
        db = make_db(n_shards=4, max_workers=4)
        db.insert_all(corpus())
        query = ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5)
        first = db.query(query, cache=False)
        for _ in range(5):
            assert db.query(query, cache=False) == first

    def test_pool_close_is_reusable(self):
        db = make_db(n_shards=4, max_workers=2)
        db.insert_all(corpus())
        before = db.query(PeakCountQuery(2), cache=False)
        db.executor.close()
        assert db.query(PeakCountQuery(2), cache=False) == before

    def test_worker_exceptions_propagate(self):
        db = make_db(n_shards=3, max_workers=3)
        db.insert_all(corpus())

        class ExplodingQuery(Query):
            def grade(self, database, sequence_id):  # pragma: no cover - never reached
                raise AssertionError

            def plan(self, database):
                from repro.engine.plan import QueryPlan

                def prefilter(database, store, candidates):
                    raise RuntimeError("shard stage failed")

                return QueryPlan(query=self, prefilter=prefilter, residual=self.grade)

        with pytest.raises(RuntimeError, match="shard stage failed"):
            db.query(ExplodingQuery(), cache=False)


class TestResidualScatter:
    def test_third_party_query_identical_across_shards(self, single_db):
        """A residual-only subclass grades identically through scatter."""

        class LengthQuery(Query):
            def candidates(self, database):
                return database.ids()[:8]

            def grade(self, database, sequence_id):
                amount = abs(len(database.representation_of(sequence_id)) - 10)
                deviation = DimensionDeviation("segment_count", float(amount), 5.0)
                return QueryMatch(
                    sequence_id,
                    database.name_of(sequence_id),
                    grade_deviations([deviation]),
                    (deviation,),
                )

        db = make_db(n_shards=3, max_workers=2)
        db.insert_all(corpus())
        assert db.query(LengthQuery(), cache=False) == single_db.query(
            LengthQuery(), cache=False
        )


PROCESS_MATRIX = [
    (n_shards, max_workers) for n_shards in SHARD_COUNTS for max_workers in (1, 2, 4)
]


@pytest.fixture(scope="module", params=PROCESS_MATRIX, ids=lambda p: f"s{p[0]}w{p[1]}")
def process_db(request):
    """One shared-memory process-backend database per (shards, workers).

    Module-scoped so each spawn-pool (and shm arena) is paid for once
    across the query matrix; closed at teardown so no blocks leak into
    later test modules.
    """
    n_shards, max_workers = request.param
    db = make_db(n_shards=n_shards, max_workers=max_workers, backend="process")
    db.insert_all(corpus())
    yield db
    db.close()


class TestProcessBackendParity:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
    def test_matches_byte_identical(self, single_db, process_db, query):
        for include_approximate in (True, False):
            process = process_db.query(query, include_approximate, cache=False)
            single = single_db.query(query, include_approximate, cache=False)
            assert process == single

    def test_backend_selected_and_accounted(self, process_db):
        assert isinstance(process_db.executor, ProcessParallelExecutor)
        report = process_db.storage_report()
        assert report["executor"]["backend"] == "process"
        assert report["shared_memory"]["backend"] == "shared_memory"
        assert report["shared_memory"]["blocks"] > 0

    def test_scatter_really_used_the_pool(self):
        """With >1 worker and >1 shard every query type must dispatch to
        worker processes — zero inline fallbacks — or the perf story is
        silently running serial."""
        db = make_db(n_shards=2, max_workers=2, backend="process")
        try:
            db.insert_all(corpus())
            for query in QUERIES:
                db.query(query, cache=False)
            stats = db.executor.stats()
            # Top-k runs parent-side by design; the six scattered plans
            # must all have gone through the pool.
            assert stats["inline_fallbacks"] == 0
            assert stats["tasks_dispatched"] >= 2 * len(QUERIES)
            assert stats["pool_workers"] == 2
        finally:
            db.close()

    def test_parity_under_interleaved_mutation(self):
        """Mutations retire shared blocks and bump generations; the next
        scatter must ship fresh manifests and stay byte-identical."""
        reference = make_db()
        db = make_db(n_shards=2, max_workers=2, backend="process")
        try:
            for target in (reference, db):
                target.insert_all(corpus())
            script = [
                ("delete", 0),
                ("insert", k_peak_sequence([8.0, 16.0], noise=0.1, name="late-a")),
                ("delete", 5),
                ("insert", k_peak_sequence([7.0, 14.0, 21.0], noise=0.1, name="late-b")),
            ]
            for action, payload in script:
                for target in (reference, db):
                    if action == "delete":
                        target.delete(payload)
                    else:
                        target.insert(payload)
                for query in QUERIES:
                    assert db.query(query, cache=False) == reference.query(
                        query, cache=False
                    )
        finally:
            db.close()
            reference.close()

    def test_stale_manifest_triggers_snapshot_retry(self, monkeypatch):
        """A worker handed a manifest whose generation disagrees with the
        pin reports a moved snapshot; the executor re-pins and retries —
        deterministically exercised by staling one manifest once."""
        from repro.engine.columnar import ColumnarSegmentStore

        reference = make_db()
        reference.insert_all(corpus())
        db = make_db(n_shards=2, max_workers=2, backend="process")
        try:
            db.insert_all(corpus())
            real_manifest = ColumnarSegmentStore.shm_manifest
            staled = {"done": False}

            def stale_once(self):
                manifest = real_manifest(self)
                if manifest is not None and not staled["done"]:
                    staled["done"] = True
                    manifest = dict(manifest)
                    manifest["generation"] = manifest["generation"] - 1
                return manifest

            monkeypatch.setattr(ColumnarSegmentStore, "shm_manifest", stale_once)
            query = PeakCountQuery(2, count_tolerance=1)
            assert db.query(query, cache=False) == reference.query(query, cache=False)
            assert db.executor.stats()["snapshot_retries"] >= 1
        finally:
            db.close()

    def test_unpicklable_query_falls_back_inline(self, single_db):
        """Test-local Query subclasses cannot cross a process boundary;
        the scatter must degrade to the inline path, same answers."""

        class LocalQuery(Query):
            def grade(self, database, sequence_id):  # pragma: no cover
                raise AssertionError

            def plan(self, database):
                from repro.engine.plan import QueryPlan

                def prefilter(database, store, candidates):
                    return sorted(int(s) for s in store.sequence_ids)

                def residual(database, sequence_id):
                    amount = float(sequence_id % 3)
                    deviation = DimensionDeviation("mod3", amount, 2.0)
                    return QueryMatch(
                        sequence_id,
                        database.name_of(sequence_id),
                        grade_deviations([deviation]),
                        (deviation,),
                    )

                return QueryPlan(query=self, prefilter=prefilter, residual=residual)

        db = make_db(n_shards=2, max_workers=2, backend="process")
        try:
            db.insert_all(corpus())
            before = db.executor.stats()["inline_fallbacks"]
            result = db.query(LocalQuery(), cache=False)
            assert db.executor.stats()["inline_fallbacks"] == before + 1
            assert sorted(m.sequence_id for m in result) == sorted(db.ids())
        finally:
            db.close()

    def test_heap_backed_store_falls_back_inline(self):
        """backend='process' with shared_memory=False cannot ship columns;
        every scatter runs inline and answers stay correct."""
        reference = make_db()
        reference.insert_all(corpus())
        db = SequenceDatabase(
            breaker=InterpolationBreaker(0.5),
            n_shards=2,
            max_workers=2,
            backend="process",
            shared_memory=False,
        )
        try:
            db.insert_all(corpus())
            for query in QUERIES:
                assert db.query(query, cache=False) == reference.query(query, cache=False)
            stats = db.executor.stats()
            assert stats["tasks_dispatched"] == 0
            assert stats["inline_fallbacks"] > 0
            assert db.storage_report()["shared_memory"] is None
        finally:
            db.close()


class TestSnapshotRetrySerial:
    def test_stage_racing_a_writer_retries_and_matches(self):
        """A mutation landing between pin and gather must force a retry,
        and the returned answer must reflect a settled snapshot."""
        db = make_db(n_shards=2)
        db.insert_all(corpus())
        fired = {"done": False}

        class RacingQuery(Query):
            def grade(self, database, sequence_id):
                deviation = DimensionDeviation("noop", 0.0, 1.0)
                return QueryMatch(
                    sequence_id,
                    database.name_of(sequence_id),
                    grade_deviations([deviation]),
                    (deviation,),
                )

            def plan(self, database):
                from repro.engine.plan import QueryPlan

                def prefilter(database, store, candidates):
                    if not fired["done"]:
                        fired["done"] = True
                        database.insert(
                            k_peak_sequence([9.0, 18.0], noise=0.0, name="racer")
                        )
                    return sorted(int(s) for s in store.sequence_ids)

                return QueryPlan(query=self, prefilter=prefilter, residual=self.grade)

        result = db.query(RacingQuery(), cache=False)
        assert db.executor.stats()["snapshot_retries"] >= 1
        # The retry re-ran against the post-insert snapshot, so the
        # racer sequence is part of the answer.
        assert any(match.name == "racer" for match in result)


class TestShapeBitParity:
    def test_long_runs_grade_bit_identically(self):
        """Runs with >= 8 segments hit NumPy's non-sequential summation;
        the vectorized stage and the scalar signature must still agree
        bit for bit because they share one reduction kernel."""
        def staircase(rise_slopes, fall_slopes, points_per_piece=6, name=""):
            """Piecewise-linear: one kinked rise run, then a fall run.

            Every rising piece has a distinct positive slope, so the
            breaker keeps one segment per piece and the collapsed
            structure is exactly "+-" with a many-segment "+" run.
            """
            values = [0.0]
            for slope in list(rise_slopes) + list(fall_slopes):
                for _ in range(points_per_piece):
                    values.append(values[-1] + slope)
            values = np.asarray(values)
            return Sequence(np.arange(len(values), dtype=float), values, name=name)

        db = make_db(n_shards=2)
        exemplar = staircase([1, 2, 3, 4, 5, 6, 7, 8, 9, 10], [-12, -30], name="exemplar")
        db.insert_all(
            [
                staircase(
                    [1 + 0.03 * i, 2, 3, 4, 5, 6, 7, 8, 9, 10 - 0.05 * i],
                    [-12, -30 - i],
                    name=f"c{i}",
                )
                for i in range(8)
            ]
        )
        # Ensure the scenario is non-trivial: at least one stored shape
        # must share the exemplar's structure with long rising runs.
        query = ShapeQuery(exemplar, duration_tolerance=0.8, amplitude_tolerance=0.8)
        engine = db.query(query, cache=False)
        legacy = db.query(query, engine=False)
        assert engine == legacy
        assert engine  # the structural class is populated: grading really ran
        assert any(
            len(db.store.symbols_of(s)) >= len(db.store.symbols_of(s, collapse_runs=True)) + 7
            for s in db.ids()
        )  # at least one behavioural run spans >= 8 segments
