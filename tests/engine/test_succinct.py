"""Succinct structures vs brute force: rank/select, wavelet, index sync.

Property tests compare :class:`BitVector` and :class:`WaveletMatrix`
against NumPy brute-force oracles over seeded random inputs spanning
block/superblock boundaries, and exercise the
:class:`SuccinctSymbolIndex` maintenance protocol (eager snapshot,
overlay patch, staleness-driven rebuild) against the store's own
uncompressed columns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import EngineError
from repro.engine.columnar import ColumnarSegmentStore
from repro.engine.succinct import (
    BitVector,
    SuccinctSymbolIndex,
    WaveletMatrix,
    column_motif_hits,
    motif_occurrences,
)

#: Lengths straddling word (64), block (128), superblock (65536) and
#: select-sample (8192) boundaries, plus tiny and empty edge cases.
LENGTHS = [0, 1, 63, 64, 65, 127, 128, 129, 1000, 8191, 8192, 8193, 65535, 65536, 70000]
DENSITIES = [0.0, 0.03, 0.5, 0.97, 1.0]


def random_bits(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(n) < density).astype(np.uint8)


class TestBitVector:
    @pytest.mark.parametrize("n", LENGTHS)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_rank_matches_cumsum(self, n, density):
        bits = random_bits(n, density, seed=n * 31 + int(density * 100))
        vector = BitVector(bits)
        brute = np.concatenate(([0], np.cumsum(bits)))
        positions = np.arange(n + 1)
        assert np.array_equal(vector.rank1(positions), brute)
        assert np.array_equal(vector.rank0(positions), positions - brute)

    @pytest.mark.parametrize("n", [l for l in LENGTHS if l > 0])
    @pytest.mark.parametrize("density", [0.03, 0.5, 0.97])
    def test_select_matches_flatnonzero(self, n, density):
        bits = random_bits(n, density, seed=n * 17 + int(density * 100))
        vector = BitVector(bits)
        ones = np.flatnonzero(bits)
        zeros = np.flatnonzero(1 - bits)
        if len(ones):
            assert np.array_equal(vector.select1(np.arange(len(ones))), ones)
        if len(zeros):
            assert np.array_equal(vector.select0(np.arange(len(zeros))), zeros)

    def test_get_and_counts(self):
        bits = random_bits(5000, 0.4, seed=5)
        vector = BitVector(bits)
        assert vector.n == 5000
        assert vector.n_ones == int(bits.sum())
        assert vector.n_zeros == 5000 - vector.n_ones
        probe = np.arange(0, 5000, 7)
        assert np.array_equal(vector.get(probe), bits[probe])

    def test_select_out_of_range(self):
        vector = BitVector(random_bits(100, 0.5, seed=1))
        with pytest.raises(EngineError):
            vector.select1(np.array([vector.n_ones]))
        with pytest.raises(EngineError):
            vector.select0(np.array([-1]))

    def test_rank_select_inverse(self):
        bits = random_bits(20000, 0.3, seed=9)
        vector = BitVector(bits)
        ranks = np.arange(vector.n_ones)
        positions = vector.select1(ranks)
        assert np.array_equal(vector.rank1(positions), ranks)
        assert np.array_equal(vector.get(positions), np.ones(len(ranks), np.uint8))

    def test_from_arrays_roundtrip(self):
        bits = random_bits(9000, 0.5, seed=3)
        vector = BitVector(bits)
        clone = BitVector.from_arrays(vector.n, vector.n_ones, **vector.arrays())
        probe = np.arange(0, 9001, 13)
        assert np.array_equal(clone.rank1(probe), vector.rank1(probe))
        assert np.array_equal(
            clone.select1(np.arange(vector.n_ones)),
            vector.select1(np.arange(vector.n_ones)),
        )

    def test_rank_directory_is_sublinear(self):
        vector = BitVector(random_bits(100000, 0.5, seed=2))
        # Packed words dominate; the rank directory stays a small fraction.
        assert vector.nbytes < 100000 // 8 * 1.4
        assert vector.n_rank_blocks == -(-100000 // 128)


class TestWaveletMatrix:
    @pytest.mark.parametrize("n", [0, 1, 100, 8192, 30000])
    @pytest.mark.parametrize("alphabet", [1, 2, 3, 4])
    def test_access_rank_count_vs_brute(self, n, alphabet):
        rng = np.random.default_rng(n * 7 + alphabet)
        values = rng.integers(0, alphabet, size=n).astype(np.int64)
        matrix = WaveletMatrix(values, n_levels=2)
        positions = np.arange(n)
        assert np.array_equal(matrix.access(positions), values)
        for symbol in range(alphabet):
            brute = np.concatenate(([0], np.cumsum(values == symbol)))
            assert np.array_equal(matrix.rank(symbol, np.arange(n + 1)), brute)
            assert matrix.count(symbol) == int((values == symbol).sum())
            assert np.array_equal(
                matrix.positions_of(symbol), np.flatnonzero(values == symbol)
            )

    def test_out_of_alphabet_symbol(self):
        values = np.zeros(50, np.int64)
        matrix = WaveletMatrix(values, n_levels=2)
        assert matrix.count(3) == 0
        assert len(matrix.positions_of(3)) == 0

    def test_from_levels_roundtrip(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 3, size=4000).astype(np.int64)
        matrix = WaveletMatrix(values, n_levels=2)
        clone = WaveletMatrix.from_levels(matrix.n, matrix.levels)
        assert np.array_equal(clone.access(np.arange(4000)), values)
        assert np.array_equal(clone.positions_of(2), matrix.positions_of(2))


class TestScanKernels:
    def test_motif_occurrences_vs_substring(self):
        rng = np.random.default_rng(4)
        symbols = rng.integers(-1, 2, size=500).astype(np.int8)
        text = "".join({-1: "-", 0: "0", 1: "+"}[int(s)] for s in symbols)
        for motif in ("+-", "+-+", "0", "--0", "+"):
            codes = np.array(
                [{"+": 1, "-": -1, "0": 0}[c] for c in motif], dtype=np.int8
            )
            brute = [
                i for i in range(len(text) - len(motif) + 1)
                if text[i : i + len(motif)] == motif
            ]
            assert motif_occurrences(symbols, codes).tolist() == brute

    def test_column_motif_hits_respects_row_boundaries(self):
        # Two rows [+,-] [+,-]: the cross-boundary "-+" must not match.
        symbols = np.array([1, -1, 1, -1], np.int8)
        starts = np.array([0, 2], np.int64)
        counts = np.array([2, 2], np.int64)
        codes = np.array([-1, 1], np.int8)
        owners, offsets = column_motif_hits(symbols, starts, counts, codes)
        assert owners.tolist() == [] and offsets.tolist() == []
        codes = np.array([1, -1], np.int8)
        owners, offsets = column_motif_hits(symbols, starts, counts, codes)
        assert owners.tolist() == [0, 1] and offsets.tolist() == [0, 0]


def seeded_database(n_rows: int = 30, seed: int = 0) -> "SequenceDatabase":
    from repro.query.database import SequenceDatabase
    from repro.workloads import clickstream_corpus

    db = SequenceDatabase(symbol_backend="succinct")
    db.insert_all(clickstream_corpus(n_sequences=n_rows, seed=seed + 23))
    return db


class TestSuccinctSymbolIndex:
    def test_build_then_parity(self):
        with seeded_database() as db:
            index = db.store.succinct_index()
            assert index.built
            index.check_parity()
            report = index.report()
            assert report["builds"] == 1 and report["rebuilds"] == 0
            assert 0 < report["bits_per_symbol"] < 8

    def test_mutations_patch_then_rebuild(self):
        with seeded_database(120) as db:
            store = db.store
            index = store.succinct_index()
            # A single delete patches via the overlay, no rebuild.
            db.delete(db.ids()[3])
            index.sync()
            index.check_parity()
            assert index.report()["patches"] == 1
            assert index.report()["rebuilds"] == 0
            # Massive churn crosses the staleness ratio: full rebuild.
            db.delete_many(db.ids()[:90])
            index.sync()
            index.check_parity()
            assert index.report()["rebuilds"] >= 1
            assert index.report()["overlay_entries"] == 0

    def test_sync_is_idempotent(self):
        with seeded_database() as db:
            index = db.store.succinct_index()
            before = dict(index.report())
            index.sync()
            index.sync()
            after = index.report()
            assert after["builds"] == before["builds"]
            assert after["patches"] == before["patches"]

    def test_queries_match_scan_after_interleaved_mutations(self):
        from repro.workloads import clickstream_corpus

        db = seeded_database(35, seed=8)
        store = db.store
        index = store.succinct_index()
        fresh = iter(clickstream_corpus(n_sequences=12, seed=99))
        for round_number in range(4):
            db.delete_many(db.ids()[:: 6 + round_number])
            for _ in range(3):
                db.insert(next(fresh))
            index.sync()
            index.check_parity()
            for motif in ("+-", "-0+", "0"):
                codes = np.array(
                    [{"+": 1, "-": -1, "0": 0}[c] for c in motif], dtype=np.int8
                )
                for collapse in (False, True):
                    got = index.occurrences(codes, collapse_runs=collapse)
                    symbols, starts, counts, ids = _view(store, collapse)
                    owners, offsets = column_motif_hits(symbols, starts, counts, codes)
                    brute: "dict[int, list[int]]" = {}
                    for owner, offset in zip(owners, offsets):
                        brute.setdefault(int(ids[owner]), []).append(int(offset))
                    assert {
                        int(sid): hits.tolist() for sid, hits in got
                    } == brute, (round_number, motif, collapse)
                    containing = index.sequences_containing(codes, collapse_runs=collapse)
                    assert containing.tolist() == sorted(brute)


def _view(store: ColumnarSegmentStore, collapse: bool):
    if collapse:
        symbols = store.behavior_symbols
        counts = store.behavior_counts.astype(np.int64)
    else:
        symbols = store.segment_symbols
        counts = store.segment_counts.astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
    return symbols, starts, counts, store.sequence_ids
