"""Mutation journal: recording, dirty sets, ring compaction, wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import EngineError
from repro.engine import ColumnarSegmentStore, MutationJournal, ShardedSegmentStore
from repro.query import SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus, k_peak_sequence


class TestMutationJournal:
    def test_records_and_reports_dirty_sets(self):
        journal = MutationJournal()
        journal.record(1, "insert", [0, 1, 2])
        journal.record(2, "delete", [1])
        journal.record(3, "append", [2, 5])
        assert journal.dirty_since(0) == {0, 1, 2, 5}
        assert journal.dirty_since(1) == {1, 2, 5}
        assert journal.dirty_since(2) == {2, 5}
        assert journal.dirty_since(3) == set()

    def test_compaction_advances_floor(self):
        journal = MutationJournal(max_entries=2)
        journal.record(1, "insert", [0])
        journal.record(2, "insert", [1])
        assert journal.compactions == 0
        journal.record(3, "insert", [2])
        assert journal.compactions == 1
        assert journal.floor == 1
        # Baselines at or after the floor stay answerable...
        assert journal.dirty_since(1) == {1, 2}
        assert journal.dirty_since(2) == {2}
        # ...older baselines are unrecoverable.
        assert journal.dirty_since(0) is None

    def test_entries_since(self):
        journal = MutationJournal(max_entries=4)
        journal.record(1, "insert", [0])
        journal.record(2, "delete", [0])
        entries = journal.entries_since(1)
        assert [(e.generation, e.kind, e.sequence_ids) for e in entries] == [
            (2, "delete", (0,))
        ]

    def test_stats_and_bytes(self):
        journal = MutationJournal()
        journal.record(1, "insert", list(range(10)))
        stats = journal.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["compactions"] == 0
        assert stats["floor"] == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(EngineError):
            MutationJournal(max_entries=0)


def _rep(values, name="j"):
    from repro.core.sequence import Sequence

    breaker = InterpolationBreaker(0.5)
    return breaker.represent(Sequence.from_values(values, name=name), curve_kind="regression")


class TestStoreWiring:
    def test_every_mutation_is_journalled(self):
        store = ColumnarSegmentStore()
        rep = _rep([0.0, 1.0, 2.0, 1.0, 0.0])
        store.insert(0, rep, peak_count=1, rr=np.array([]))
        store.extend([(3, rep, 1, np.array([])), (5, rep, 1, np.array([]))])
        store.replace(3, rep, peak_count=1, rr=np.array([1.5]))
        store.delete(0)
        store.delete_many([3, 5])
        kinds = [(e.kind, e.sequence_ids) for e in store.journal.entries_since(0)]
        assert kinds == [
            ("insert", (0,)),
            ("insert", (3, 5)),
            ("append", (3,)),
            ("delete", (0,)),
            ("delete", (3, 5)),
        ]
        assert store.dirty_ids_since((0,)) == {0, 3, 5}
        assert store.dirty_ids_since(store.generation_vector()) == set()

    def test_replace_many_bad_payload_mutates_nothing(self):
        store = ColumnarSegmentStore()
        rep = _rep([0.0, 1.0, 2.0, 1.0, 0.0])
        store.extend([(0, rep, 1, np.array([1.0])), (1, rep, 1, np.array([2.0]))])
        generation = store.generation
        with pytest.raises(EngineError, match="one-dimensional"):
            store.replace_many(
                [
                    (0, rep, 1, np.array([9.0])),
                    (1, rep, 1, np.array([[1.0, 2.0]])),  # malformed: 2-D
                ]
            )
        # The valid first item must not have been spliced either.
        assert store.generation == generation
        assert np.array_equal(store.rr_intervals_of(0), np.array([1.0]))
        store.check_consistency()

    def test_sharded_vector_and_dirty_union(self):
        store = ShardedSegmentStore(3)
        rep = _rep([0.0, 1.0, 2.0, 1.0, 0.0])
        baseline = store.generation_vector()
        assert baseline == (0, 0, 0)
        store.extend([(i, rep, 1, np.array([])) for i in range(5)])
        assert store.dirty_ids_since(baseline) == {0, 1, 2, 3, 4}
        mid = store.generation_vector()
        store.delete(4)
        assert store.dirty_ids_since(mid) == {4}
        # A vector from a different shard layout is unanswerable.
        assert store.dirty_ids_since((0,)) is None

    def test_sharded_compaction_poisons_the_union(self):
        store = ShardedSegmentStore(2)
        rep = _rep([0.0, 1.0, 2.0, 1.0, 0.0])
        baseline = store.generation_vector()
        for shard in store.shards():
            shard.journal.max_entries = 1
        for i in range(6):
            store.insert(i, rep, peak_count=1, rr=np.array([]))
        assert store.dirty_ids_since(baseline) is None
        assert store.journal_stats()["compactions"] > 0

    def test_storage_report_exposes_journal(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), n_shards=2)
        db.insert_all(fever_corpus(n_two_peak=2, n_one_peak=1, n_three_peak=1))
        db.insert(k_peak_sequence([6.0], noise=0.0, name="solo"))
        report = db.storage_report()["journal"]
        assert report["entries"] >= 2
        assert report["bytes"] > 0
        assert report["compactions"] == 0
        stats = db.storage_report()["result_cache"]
        for key in ("revalidations", "delta_hits", "delta_fallbacks"):
            assert key in stats
