"""The vectorized pattern stage: column matcher and engine parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ColumnPatternMatcher
from repro.engine.nfa import SLOPE_ALPHABET
from repro.patterns.regex import TWO_PEAKS, SymbolPattern
from repro.query import PatternQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


class TestColumnMatcher:
    def test_packed_strings_match_nfa(self):
        pattern = SymbolPattern(TWO_PEAKS)
        matcher = ColumnPatternMatcher.for_pattern(pattern)
        strings = ["+-+-", "0+-0+0", "+-", "", "000", "+-+-+-", "+", "-+-+"]
        expected = np.asarray([pattern.fullmatch(s) for s in strings])
        np.testing.assert_array_equal(matcher.fullmatch_strings(strings), expected)

    def test_empty_batch(self):
        matcher = ColumnPatternMatcher.for_pattern("+*")
        assert matcher.fullmatch_strings([]).shape == (0,)

    def test_empty_strings_respect_empty_match(self):
        accepts_empty = ColumnPatternMatcher.for_pattern("0*")
        rejects_empty = ColumnPatternMatcher.for_pattern("0^+")
        np.testing.assert_array_equal(
            accepts_empty.fullmatch_strings(["", "0"]), [True, True]
        )
        np.testing.assert_array_equal(
            rejects_empty.fullmatch_strings(["", "0"]), [False, True]
        )

    def test_dead_state_short_circuits(self):
        # "++" then anything cannot recover; the matcher must still
        # report neighbours correctly after dropping the dead sequence.
        matcher = ColumnPatternMatcher.for_pattern("(0|-)*")
        strings = ["+" * 50, "0" * 50, "-0" * 25]
        np.testing.assert_array_equal(
            matcher.fullmatch_strings(strings), [False, True, True]
        )

    def test_subset_of_column(self):
        """Matching restricted to candidate positions (gathered starts)."""
        matcher = ColumnPatternMatcher.for_pattern("+-")
        codes = {s: i - 1 for i, s in enumerate(SLOPE_ALPHABET)}
        packed = np.asarray(
            [codes[c] for c in "+-0+-+"], dtype=np.int8
        )  # strings: "+-" at 0, "0" at 2, "+-+" at 3
        starts = np.asarray([0, 2, 3])
        counts = np.asarray([2, 1, 3])
        np.testing.assert_array_equal(
            matcher.fullmatch_column(packed, starts, counts), [True, False, False]
        )


@pytest.fixture(scope="module")
def fever_db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=6, n_one_peak=4, n_three_peak=4))
    return db


class TestEnginePatternParity:
    @pytest.mark.parametrize(
        "source,collapse",
        [
            (GOALPOST, True),
            (GOALPOST, False),
            ("(0|-)* + (0|-)*", False),
            (".*", True),
            ("0*", True),
            ("[^0]^+", True),
        ],
    )
    def test_engine_equals_legacy(self, fever_db, source, collapse):
        query = PatternQuery(source, collapse_runs=collapse)
        engine = fever_db.query(query)
        legacy = fever_db.query(query, engine=False)
        assert engine == legacy

    def test_parity_on_ecg_with_theta(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
        db.insert_all(ecg_corpus(n_sequences=15, seed=11))
        for source in [".*", "(+|-|0)*", "[^+]*", GOALPOST]:
            query = PatternQuery(source)
            assert db.query(query) == db.query(query, engine=False)

    def test_vectorized_stage_planned(self, fever_db):
        plan = PatternQuery(GOALPOST).plan(fever_db)
        assert "vectorized-grade" in plan.stages()
        assert plan.probe is None

    def test_tabulation_failure_falls_back_to_probe(self, fever_db):
        query = PatternQuery(GOALPOST)
        query._matcher = None
        query._matcher_failed = True
        plan = query.plan(fever_db)
        assert "vectorized-grade" not in plan.stages()
        assert plan.probe is not None
        assert fever_db.query(query, cache=False) == fever_db.query(query, engine=False)

    def test_empty_database(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        assert db.query(PatternQuery(GOALPOST)) == []
