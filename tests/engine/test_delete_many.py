"""Shard-aware batched deletion: parity, offsets, cache invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import EngineError, QueryError
from repro.query import PeakCountQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus

SEGMENT_COLUMNS = (
    "sequence",
    "start_index",
    "end_index",
    "start_time",
    "end_time",
    "start_value",
    "end_value",
    "slope",
    "symbol",
)


@pytest.fixture(scope="module")
def corpus():
    return fever_corpus(n_two_peak=14, n_one_peak=10, n_three_peak=10)


def _build(corpus, **kwargs) -> SequenceDatabase:
    database = SequenceDatabase(breaker=InterpolationBreaker(0.5), **kwargs)
    database.insert_all(corpus)
    return database


def _assert_equal_state(a: SequenceDatabase, b: SequenceDatabase) -> None:
    assert a.ids() == b.ids()
    for shard_a, shard_b in zip(a.store.shards(), b.store.shards()):
        shard_b.check_consistency()
        for name in SEGMENT_COLUMNS:
            assert np.array_equal(
                shard_a.segment_column(name), shard_b.segment_column(name)
            ), name
        assert np.array_equal(shard_a.sequence_ids, shard_b.sequence_ids)
        assert np.array_equal(shard_a.behavior_symbols, shard_b.behavior_symbols)
        assert np.array_equal(shard_a.rr_values, shard_b.rr_values)
        assert np.array_equal(shard_a.peak_counts, shard_b.peak_counts)
    for sequence_id in a.ids():
        assert a.pattern_index.symbols_of(sequence_id) == b.pattern_index.symbols_of(sequence_id)
        assert a.behavior_index.symbols_of(sequence_id) == b.behavior_index.symbols_of(sequence_id)
    assert a.pattern_index._trie.node_count() == b.pattern_index._trie.node_count()
    assert len(a.rr_index) == len(b.rr_index)
    b.rr_index.check_invariants()


@pytest.mark.parametrize("kwargs", [{}, {"n_shards": 3}], ids=["single", "sharded"])
@pytest.mark.parametrize("stride", [2, 3])
def test_delete_many_equals_sequential_deletes(corpus, kwargs, stride):
    sequential = _build(corpus, **kwargs)
    batched = _build(corpus, **kwargs)
    victims = sequential.ids()[::stride]
    for sequence_id in victims:
        sequential.delete(sequence_id)
    batched.delete_many(victims)
    _assert_equal_state(sequential, batched)


def test_delete_everything(corpus):
    database = _build(corpus, n_shards=2)
    database.delete_many(database.ids())
    assert len(database) == 0
    for shard in database.store.shards():
        shard.check_consistency()
        assert len(shard) == 0


def test_one_generation_bump_per_touched_shard(corpus):
    database = _build(corpus, n_shards=4)
    # Victims living on exactly two shards.
    victims = [s for s in database.ids() if s % 4 in (1, 2)][:6]
    touched = {s % 4 for s in victims}
    generations = [shard.generation for shard in database.store.shards()]
    before = database.store.generation
    database.delete_many(victims)
    after_per_shard = [shard.generation for shard in database.store.shards()]
    for index, (was, now) in enumerate(zip(generations, after_per_shard)):
        assert now - was == (1 if index in touched else 0)
    assert database.store.generation - before == len(touched)


def test_delete_many_invalidates_result_cache(corpus):
    database = _build(corpus, n_shards=2)
    query = PeakCountQuery(2, count_tolerance=1)
    first = database.query(query)
    assert database.cache_stats()["entries"] >= 1
    victims = [m.sequence_id for m in first[:3]]
    database.delete_many(victims)
    epoch_results = database.query(query)
    assert all(m.sequence_id not in victims for m in epoch_results)
    # And the answer matches a cold evaluation.
    assert epoch_results == database.query(query, cache=False)


def test_unknown_or_duplicate_ids_delete_nothing(corpus):
    database = _build(corpus, n_shards=2)
    count = len(database)
    with pytest.raises(QueryError):
        database.delete_many([database.ids()[0], 10**9])
    with pytest.raises(QueryError):
        database.delete_many([database.ids()[0], database.ids()[0]])
    assert len(database) == count
    for shard in database.store.shards():
        shard.check_consistency()


def test_store_level_delete_many_validates_atomically(corpus):
    database = _build(corpus, n_shards=3)
    store = database.store
    live = [int(s) for s in store.sequence_ids[:4]]
    before = len(store)
    with pytest.raises(EngineError):
        store.delete_many(live + [10**9])
    assert len(store) == before
    store.check_consistency()


def test_empty_batch_is_a_noop(corpus):
    database = _build(corpus)
    generation = database.store.generation
    database.delete_many([])
    assert database.store.generation == generation
