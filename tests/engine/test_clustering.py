"""Cluster-representative pruning index: lower-bound invariants,
journal-driven maintenance, and topk-vs-oracle equality.

The load-bearing property is GEMINI-style losslessness: the sketch
lower bound must never exceed the true profile distance, for member
bounds and for cluster (representative - radius) bounds alike, so every
prune in :meth:`ClusterIndex.topk` is a proof and the pruned answer
equals the full-grade-then-sort oracle exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.clustering import (
    N_FEATURES,
    ClusterIndex,
    chunked_distances,
    lower_bound_scale,
    profile_features,
    sketch_of,
)
from repro.index import stale_rebuild_due
from repro.query import SequenceDatabase
from repro.workloads import server_metrics_corpus


def _metrics_db(n=40, seed=17):
    db = SequenceDatabase()
    db.insert_all(server_metrics_corpus(n_sequences=n, seed=seed))
    return db


# ----------------------------------------------------------------------
# Profile features
# ----------------------------------------------------------------------


def test_profile_features_shape_and_determinism():
    db = _metrics_db(n=8)
    index = db.store.cluster_index()
    for sequence_id in db.ids():
        features = index.features_of(sequence_id)
        assert features.shape == (N_FEATURES,)
        assert np.array_equal(features, index.features_of(sequence_id))


def test_profile_features_store_matches_representation():
    # The store copies the segment columns verbatim at ingest, so a
    # profile built from the representation equals the index's row bit
    # for bit — the foundation of query-side/store-side parity.
    db = _metrics_db(n=10)
    index = db.store.cluster_index()
    for sequence_id in db.ids():
        columns = db.representation_of(sequence_id).segment_columns()
        direct = profile_features(
            columns["start_time"], columns["end_time"],
            columns["start_value"], columns["end_value"],
        )
        assert np.array_equal(direct, index.features_of(sequence_id))


def test_profile_features_empty_and_single_segment():
    assert np.array_equal(
        profile_features(np.array([]), np.array([]), np.array([]), np.array([])),
        np.zeros(N_FEATURES),
    )
    single = profile_features(
        np.array([0.0]), np.array([4.0]), np.array([1.0]), np.array([9.0])
    )
    assert single.shape == (N_FEATURES,)
    assert single[0] == pytest.approx(1.0)
    assert single[-1] == pytest.approx(9.0)


# ----------------------------------------------------------------------
# Lower-bound invariants (property tests over random profiles)
# ----------------------------------------------------------------------


def test_sketch_lower_bound_never_exceeds_true_distance():
    rng = np.random.default_rng(3)
    scale = lower_bound_scale()
    for _ in range(200):
        q = rng.normal(scale=rng.uniform(0.1, 50.0), size=N_FEATURES)
        s = rng.normal(scale=rng.uniform(0.1, 50.0), size=N_FEATURES)
        true = float(np.linalg.norm(q - s))
        bound = scale * float(np.linalg.norm(sketch_of(q) - sketch_of(s)))
        assert bound <= true


def test_sketch_lower_bound_holds_on_real_profiles():
    db = _metrics_db(n=30)
    index = db.store.cluster_index()
    scale = lower_bound_scale()
    ids = db.ids()
    rng = np.random.default_rng(5)
    for _ in range(100):
        a, b = rng.choice(ids, size=2, replace=False)
        fa, fb = index.features_of(int(a)), index.features_of(int(b))
        true, __ = chunked_distances(fa, fb)
        bound = scale * float(np.linalg.norm(sketch_of(fa) - sketch_of(fb)))
        assert bound <= float(true[0])


def test_cluster_level_bound_never_exceeds_member_distance():
    db = _metrics_db(n=40)
    index = db.store.cluster_index()
    scale = lower_bound_scale()
    rng = np.random.default_rng(7)
    queries = [
        index.features_of(int(rng.choice(db.ids()))) + rng.normal(scale=3.0, size=N_FEATURES)
        for _ in range(10)
    ]
    for query in queries:
        query_sketch = sketch_of(query)
        for cluster in index._clusters:
            if not cluster.member_ids:
                continue
            gap = float(np.linalg.norm(cluster.representative - query_sketch))
            cluster_bound = scale * max(0.0, gap - cluster.radius)
            for member in cluster.member_ids:
                true, __ = chunked_distances(index.features_of(member), query)
                assert cluster_bound <= float(true[0])


def test_chunked_distances_matches_norm_and_abandons_soundly():
    rng = np.random.default_rng(11)
    rows = rng.normal(size=(64, N_FEATURES))
    query = rng.normal(size=N_FEATURES)
    distances, abandoned = chunked_distances(rows, query)
    assert abandoned == 0
    assert np.allclose(distances, np.linalg.norm(rows - query, axis=1))
    bound = float(np.median(distances))
    pruned, abandoned = chunked_distances(rows, query, abandon_above=bound)
    assert abandoned > 0
    finite = np.isfinite(pruned)
    # Surviving rows carry their exact distance; abandoned rows are all
    # provably beyond the bound.
    assert np.array_equal(pruned[finite], distances[finite])
    assert (distances[~finite] > bound).all()


# ----------------------------------------------------------------------
# topk vs the full-grade oracle
# ----------------------------------------------------------------------


def _oracle(index, query, k, threshold=np.inf):
    ids, distances = index.all_distances(query)
    order = sorted(zip(distances.tolist(), ids.tolist()))
    return [(d, i) for d, i in order if d <= threshold][:k]


def test_topk_equals_oracle_for_many_queries_and_ks():
    db = _metrics_db(n=60)
    index = db.store.cluster_index()
    rng = np.random.default_rng(13)
    for trial in range(12):
        anchor = index.features_of(int(rng.choice(db.ids())))
        query = anchor + rng.normal(scale=rng.uniform(0.0, 10.0), size=N_FEATURES)
        for k in (1, 5, 17, 200):
            assert index.topk(query, k) == _oracle(index, query, k)


def test_topk_threshold_and_empty_cases():
    db = _metrics_db(n=20)
    index = db.store.cluster_index()
    query = index.features_of(db.ids()[0])
    ids, distances = index.all_distances(query)
    threshold = float(np.median(distances))
    assert index.topk(query, 50, threshold=threshold) == _oracle(
        index, query, 50, threshold=threshold
    )
    assert index.topk(query, 0) == []
    empty = ClusterIndex(SequenceDatabase().store)
    empty.sync()
    assert empty.topk(query, 5) == []


def test_topk_tie_breaks_on_ascending_id():
    db = SequenceDatabase()
    corpus = server_metrics_corpus(n_sequences=6, seed=23)
    db.insert_all(corpus)
    # Re-ingest the same trace twice: identical profiles, distinct ids.
    twin_a = db.insert(corpus[0])
    twin_b = db.insert(corpus[0])
    index = db.store.cluster_index()
    query = index.features_of(twin_a)
    top = index.topk(query, 2)
    assert [sequence_id for __, sequence_id in top] == [0, twin_a]
    # 0 and the twins are equidistant groups; within the twin pair the
    # smaller id must come first when both fit.
    top4 = index.topk(query, 3)
    assert top4[1][1] < top4[2][1]
    assert top4[1][0] == top4[2][0]


# ----------------------------------------------------------------------
# Maintenance: sync vs rebuild, staleness, compaction
# ----------------------------------------------------------------------


def test_incremental_sync_equals_fresh_rebuild():
    db = _metrics_db(n=40)
    index = db.store.cluster_index()  # built at generation g0
    extra = server_metrics_corpus(n_sequences=12, seed=99)
    db.insert_all(extra[:6])
    db.delete_many(db.ids()[1:4])
    db.append(db.ids()[0], [55.0, 60.0, 52.0, 49.0])
    db.insert_all(extra[6:])
    synced = db.store.cluster_index()  # journal replay, not rebuild
    assert synced is index
    fresh = ClusterIndex(db.store)
    fresh.sync()
    assert np.array_equal(synced._ids, fresh._ids)
    assert np.array_equal(synced._features, fresh._features)
    rng = np.random.default_rng(31)
    for _ in range(6):
        query = fresh.features_of(int(rng.choice(db.ids())))
        assert synced.topk(query, 9) == fresh.topk(query, 9)


def test_staleness_ratio_triggers_rebuild():
    db = _metrics_db(n=30)
    index = db.store.cluster_index()
    assert index.rebuilds == 0
    # Push enough journal-dirty ids through sync to trip the shared
    # staleness policy (floor 64, ratio 2*stale > total).
    sequence_id = db.ids()[0]
    for round_ in range(70):
        db.append(sequence_id, [float(round_)])
        db.store.cluster_index()
    assert index.rebuilds >= 1
    assert stale_rebuild_due(65, 30, ClusterIndex._STALE_FLOOR)


def test_journal_compaction_forces_rebuild():
    db = _metrics_db(n=20)
    index = db.store.cluster_index()
    before = index.rebuilds
    db.store.journal.max_entries = 2
    for round_ in range(4):
        db.append(db.ids()[round_], [9.0, 11.0])
    synced = db.store.cluster_index()
    assert synced.rebuilds == before + 1
    fresh = ClusterIndex(db.store)
    fresh.sync()
    assert np.array_equal(synced._features, fresh._features)


def test_report_counters_move():
    db = _metrics_db(n=30)
    index = db.store.cluster_index()
    report = index.report()
    assert report["built"] and report["sequences"] == 30
    assert report["representatives"] == index.n_clusters > 1
    query = index.features_of(db.ids()[3])
    index.topk(query, 3)
    after = index.report()
    assert after["queries"] == 1
    assert after["clusters_probed"] >= 1
    assert after["last_rows_considered"] == 30
    assert 0.0 <= after["last_pruned_fraction"] <= 1.0
    assert after["nbytes"] > 0
