"""ShardedSegmentStore: routing, block appends, deletion, integrity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import EngineError
from repro.engine import ColumnarSegmentStore, ShardedSegmentStore
from repro.query import SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus, k_peak_sequence


def store_items(n=12, theta=0.05):
    """(sequence_id, representation, peak_count, rr) tuples from a real ingest."""
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5), theta=theta)
    db.insert_all(fever_corpus(n_two_peak=n - 2 * (n // 3), n_one_peak=n // 3, n_three_peak=n // 3))
    return [
        (
            sequence_id,
            db.representation_of(sequence_id),
            db.peak_count_of(sequence_id),
            db.rr_intervals_of(sequence_id),
        )
        for sequence_id in db.ids()
    ]


@pytest.fixture(scope="module")
def items():
    return store_items(12)


class TestRouting:
    def test_hash_by_sequence_id(self, items):
        store = ShardedSegmentStore(3, theta=0.05)
        store.extend(items)
        for sequence_id, *_ in items:
            assert store.shard_index(sequence_id) == sequence_id % 3
            assert sequence_id in store.shards()[sequence_id % 3]
            assert sequence_id in store
        store.check_consistency()

    def test_partition_ids_routes_and_preserves_order(self, items):
        store = ShardedSegmentStore(3, theta=0.05)
        store.extend(items)
        candidates = [7, 1, 4, 6, 3]
        parts = store.partition_ids(candidates)
        assert len(parts) == 3
        assert parts[0] == [6, 3]
        assert parts[1] == [7, 1, 4]
        assert parts[2] == []
        assert store.partition_ids(None) == [None, None, None]

    def test_single_store_partition_protocol(self, items):
        store = ColumnarSegmentStore(theta=0.05)
        store.extend(items)
        assert store.shards() == (store,)
        assert store.shard_count == 1
        assert store.partition_ids([3, 1]) == [[3, 1]]
        assert store.partition_ids(None) == [None]

    def test_at_least_one_shard(self):
        with pytest.raises(EngineError, match="at least one shard"):
            ShardedSegmentStore(0)


class TestMutation:
    @pytest.mark.parametrize("n_shards", [1, 2, 7])
    def test_extend_matches_single_store(self, items, n_shards):
        sharded = ShardedSegmentStore(n_shards, theta=0.05)
        sharded.extend(items)
        single = ColumnarSegmentStore(theta=0.05)
        single.extend(items)
        assert len(sharded) == len(single)
        assert sharded.n_segments == single.n_segments
        assert sharded.n_rr == single.n_rr
        assert sharded.n_behavior == single.n_behavior
        assert np.array_equal(sharded.sequence_ids, single.sequence_ids)
        for sequence_id, *_ in items:
            assert sharded.peak_count_of(sequence_id) == single.peak_count_of(sequence_id)
            assert np.array_equal(
                sharded.rr_intervals_of(sequence_id), single.rr_intervals_of(sequence_id)
            )
            for collapse in (False, True):
                assert sharded.symbols_of(sequence_id, collapse) == single.symbols_of(
                    sequence_id, collapse
                )
        sharded.check_consistency()

    def test_extend_appends_one_block_per_shard(self, items):
        sharded = ShardedSegmentStore(3, theta=0.05)
        before = sharded.generation
        sharded.extend(items)
        touched = len({sequence_id % 3 for sequence_id, *_ in items})
        # One generation bump per touched shard: a whole block per shard.
        assert sharded.generation == before + touched

    def test_ids_must_increase_even_across_shards(self, items):
        sharded = ShardedSegmentStore(2, theta=0.05)
        sharded.extend(items)
        stale_id = items[-1][0] - 1  # lands in the other shard, still stale
        with pytest.raises(EngineError, match="increasing order"):
            sharded.insert(stale_id, items[0][1], peak_count=items[0][2], rr=items[0][3])

    def test_delete_routes_and_compacts(self, items):
        sharded = ShardedSegmentStore(3, theta=0.05)
        sharded.extend(items)
        victim = items[4][0]
        shard = sharded.shard_of(victim)
        shard_size = len(shard)
        sharded.delete(victim)
        assert victim not in sharded
        assert len(shard) == shard_size - 1
        assert len(sharded) == len(items) - 1
        sharded.check_consistency()
        with pytest.raises(EngineError, match="not in columnar store"):
            sharded.peak_count_of(victim)

    def test_generation_rolls_up_monotonically(self, items):
        sharded = ShardedSegmentStore(2, theta=0.05)
        seen = [sharded.generation]
        sharded.extend(items[:4])
        seen.append(sharded.generation)
        sharded.delete(items[0][0])
        seen.append(sharded.generation)
        sharded.extend(items[4:6])
        seen.append(sharded.generation)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_empty_store(self):
        sharded = ShardedSegmentStore(4)
        assert len(sharded) == 0
        assert sharded.n_sequences == 0
        assert len(sharded.sequence_ids) == 0
        assert 3 not in sharded
        sharded.extend([])
        sharded.check_consistency()

    def test_nbytes_accounts_all_shards(self, items):
        sharded = ShardedSegmentStore(3, theta=0.05)
        empty_bytes = sharded.nbytes
        sharded.extend(items)
        assert sharded.nbytes > empty_bytes
        assert sharded.nbytes == sum(shard.nbytes for shard in sharded.shards())


class TestIntegrity:
    def test_misrouted_sequence_detected(self, items):
        sharded = ShardedSegmentStore(3, theta=0.05)
        # Bypass routing: plant a sequence in a shard that does not own it.
        wrong_shard = sharded.shards()[(items[0][0] + 1) % 3]
        wrong_shard.insert(
            items[0][0], items[0][1], peak_count=items[0][2], rr=items[0][3]
        )
        with pytest.raises(EngineError, match="does not own"):
            sharded.check_consistency()

    @pytest.mark.parametrize("n_shards", [1, 2, 7])
    def test_rebalance_after_delete_stress(self, n_shards):
        """Interleaved bulk inserts and deletes keep every shard coherent."""
        rng = np.random.default_rng(7)
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), n_shards=n_shards)
        db.insert_all(fever_corpus(n_two_peak=6, n_one_peak=5, n_three_peak=5))
        live = set(db.ids())
        for round_index in range(6):
            victims = rng.choice(sorted(live), size=min(4, len(live)), replace=False)
            for victim in victims:
                db.delete(int(victim))
                live.discard(int(victim))
            db.store.check_consistency()
            added = db.insert_all(
                [
                    k_peak_sequence([6.0 + i, 18.0 - i], noise=0.05, name=f"r{round_index}-{i}")
                    for i in range(3)
                ]
            )
            live.update(added)
            db.store.check_consistency()
        assert set(db.ids()) == live
        assert len(db.store) == len(live)
        for sequence_id in live:
            assert db.store.symbols_of(sequence_id) == db.pattern_index.symbols_of(sequence_id)
