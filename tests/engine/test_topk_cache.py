"""Delta revalidation of cached top-k answers: the heap patch.

A cached top-k entry can't be patched like an unlimited verdict list —
the cut hides everything beyond the k-th match, so a mutation may
promote an unseen sequence into the answer.  The executor's rule: patch
in place only when the surviving-plus-regraded candidates provably
contain the true top k (counted against the old k-th boundary);
otherwise re-run the pruned search, counted as a ``topk_refill``.
These tests pin both sides of that rule and the compaction fallback,
always checking the patched answer against a cold ``engine=False`` run.
"""

from __future__ import annotations

import pytest

from repro.query import SequenceDatabase, TopKQuery
from repro.segmentation.online import IncrementalRegressionBreaker
from repro.workloads import latency_trace, server_metrics_corpus

SHARD_COUNTS = [None, 2, 7]


def _metrics_db(n_shards, n=30, seed=17):
    db = SequenceDatabase(
        breaker=IncrementalRegressionBreaker(0.5),
        n_shards=n_shards,
        max_workers=None,
    )
    db.insert_all(server_metrics_corpus(n_sequences=n, seed=seed))
    return db


def _probe():
    return latency_trace(baseline=45.0, n_bursts=3, seed=5, name="probe")


def _tuples(matches):
    return [(m.sequence_id, m.grade.name, m.total_deviation) for m in matches]


def _assert_parity(db, query):
    assert _tuples(db.query(query)) == _tuples(db.query(query, engine=False))


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_heap_patch_when_dirty_id_stays_outside_topk(n_shards):
    db = _metrics_db(n_shards)
    query = TopKQuery(_probe(), 5)
    baseline = db.query(query)
    top_ids = {m.sequence_id for m in baseline}
    # Mutate a sequence far outside the answer; its re-graded match
    # still sorts beyond the old k-th boundary, so the patch applies.
    outsider = next(
        m.sequence_id for m in reversed(db.query_legacy(query))
        if m.sequence_id not in top_ids
    )
    before = db.result_cache.stats()
    db.append(outsider, [500.0, 900.0, 450.0])
    _assert_parity(db, query)
    after = db.result_cache.stats()
    assert after["delta_hits"] == before["delta_hits"] + 1
    assert after["topk_refills"] == before["topk_refills"]


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_refill_when_kth_best_worsens(n_shards):
    db = _metrics_db(n_shards)
    query = TopKQuery(_probe(), 5)
    baseline = db.query(query)
    kth = baseline[-1].sequence_id
    before = db.result_cache.stats()
    # Push the current k-th match far away: the survivors no longer
    # account for k candidates inside the old boundary, so the cache
    # must re-run the pruned search to find the promoted sequence.
    db.append(kth, [800.0, 1200.0, 900.0, 750.0])
    _assert_parity(db, query)
    after = db.result_cache.stats()
    assert after["topk_refills"] == before["topk_refills"] + 1
    assert db.query(query)[-1].sequence_id != kth


@pytest.mark.parametrize("n_shards", [None, 2])
def test_refill_when_kth_is_deleted(n_shards):
    db = _metrics_db(n_shards)
    query = TopKQuery(_probe(), 5)
    kth = db.query(query)[-1].sequence_id
    before = db.result_cache.stats()
    db.delete(kth)
    _assert_parity(db, query)
    after = db.result_cache.stats()
    assert after["topk_refills"] == before["topk_refills"] + 1
    assert kth not in {m.sequence_id for m in db.query(query)}


@pytest.mark.parametrize("n_shards", [None, 7])
def test_patch_without_refill_when_k_exceeds_matches(n_shards):
    # With k beyond the corpus size the cached answer is the *complete*
    # match set, so any re-graded candidate merges in place — never a
    # refill, even when the mutated sequence changes rank.
    db = _metrics_db(n_shards, n=8)
    query = TopKQuery(_probe(), 50)
    baseline = db.query(query)
    assert len(baseline) == 8
    before = db.result_cache.stats()
    db.append(baseline[2].sequence_id, [300.0, 640.0, 410.0])
    _assert_parity(db, query)
    after = db.result_cache.stats()
    assert after["delta_hits"] == before["delta_hits"] + 1
    assert after["topk_refills"] == before["topk_refills"]


def test_compaction_falls_back_to_full_rerun():
    db = _metrics_db(2)
    query = TopKQuery(_probe(), 5)
    db.query(query)
    before = db.result_cache.stats()
    # Shrink the ring so the next mutations evict the journal entries
    # the cached answer would need; the cache must fall back.
    for shard in db.store.shards():
        shard.journal.max_entries = 1
    for sequence_id in db.ids()[:4]:
        db.append(sequence_id, [70.0, 75.0])
    _assert_parity(db, query)
    after = db.result_cache.stats()
    assert after["delta_fallbacks"] == before["delta_fallbacks"] + 1
    assert after["topk_refills"] == before["topk_refills"]


def test_topk_entries_counted_separately():
    db = _metrics_db(None, n=12)
    stats = db.result_cache.stats()
    assert stats["topk_entries"] == 0
    db.query(TopKQuery(_probe(), 3))
    db.query(TopKQuery(_probe(), 7))
    from repro.query import PeakCountQuery

    db.query(PeakCountQuery(2, count_tolerance=6))
    db.query(PeakCountQuery(2, count_tolerance=6), limit=2)
    stats = db.result_cache.stats()
    # Two TopKQuery entries + one limited generic entry carry a limit
    # in their key; the unlimited generic entry keeps the 2-tuple key.
    assert stats["topk_entries"] == 3
    assert stats["entries"] == 4


def test_same_query_different_limits_coexist():
    db = _metrics_db(None, n=20)
    from repro.query import PeakCountQuery

    query = PeakCountQuery(2, count_tolerance=6)
    full = db.query(query)
    two = db.query(query, limit=2)
    five = db.query(query, limit=5)
    assert _tuples(two) == _tuples(full[:2])
    assert _tuples(five) == _tuples(full[:5])
    hits_before = db.result_cache.stats()["hits"]
    assert _tuples(db.query(query, limit=2)) == _tuples(two)
    assert _tuples(db.query(query)) == _tuples(full)
    assert db.result_cache.stats()["hits"] == hits_before + 2
