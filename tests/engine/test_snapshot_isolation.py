"""Snapshot isolation: concurrent readers only ever see committed states.

The MVCC-lite contract: a query pins the store's per-shard generation
vector at plan time and the executor retries whenever the pin moves, so
a reader racing a writer returns the answer for *some* committed
mutation step — never a torn mix of two steps.  The tests precompute
the reference answer after every step of a mutation script on a serial
database, then race reader threads against a writer replaying the same
script and assert every observed result is exactly one of those
per-step snapshots.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import SnapshotToken
from repro.query import PeakCountQuery, SequenceDatabase, ShapeQuery
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus, goalpost_fever, k_peak_sequence


def make_db(n_shards=None, max_workers=None):
    return SequenceDatabase(
        breaker=InterpolationBreaker(0.5),
        n_shards=n_shards,
        max_workers=max_workers,
    )


def corpus():
    return fever_corpus(n_two_peak=6, n_one_peak=4, n_three_peak=4)


QUERY = PeakCountQuery(2, count_tolerance=1)


def mutation_script():
    """Steps that change query membership, so snapshots are distinct."""
    return [
        ("insert", k_peak_sequence([8.0, 16.0], noise=0.1, name="race-a")),
        ("delete", 0),
        ("insert", k_peak_sequence([7.0, 14.0, 21.0], noise=0.1, name="race-b")),
        ("delete", 5),
        ("insert", k_peak_sequence([9.0, 18.0], noise=0.0, name="race-c")),
        ("delete", 10),
    ]


def apply_step(db, step):
    action, payload = step
    if action == "delete":
        db.delete(payload)
    else:
        db.insert(payload)


class TestSnapshotTokenUnit:
    def test_pin_and_moved_track_shard_generations(self):
        db = make_db(n_shards=3)
        db.insert_all(corpus())
        token = SnapshotToken.pin(db.store)
        assert token is not None and token.settled
        assert token.moved(db.store) == []
        db.delete(0)
        assert token.moved(db.store) != []
        repinned = SnapshotToken.pin(db.store)
        assert repinned.moved(db.store) == []

    def test_executor_counts_retries_in_stats(self):
        db = make_db(n_shards=2, max_workers=2)
        db.insert_all(corpus())
        db.query(QUERY, cache=False)
        stats = db.executor.stats()
        assert "snapshot_retries" in stats
        assert stats["snapshot_retries"] >= 0


class TestConcurrentReaders:
    @pytest.mark.parametrize("n_shards", [2, 7])
    def test_every_read_is_a_committed_snapshot(self, n_shards):
        script = mutation_script()

        # Reference: the exact answer after step 0..k on a serial db.
        reference = make_db()
        reference.insert_all(corpus())
        snapshots = [reference.query(QUERY, cache=False)]
        for step in script:
            apply_step(reference, step)
            snapshots.append(reference.query(QUERY, cache=False))

        db = make_db(n_shards=n_shards, max_workers=2)
        db.insert_all(corpus())

        start = threading.Barrier(3)
        done = threading.Event()
        observed = []
        errors = []

        def writer():
            start.wait()
            for step in script:
                apply_step(db, step)
            done.set()

        def reader():
            start.wait()
            try:
                while not done.is_set():
                    observed.append(db.query(QUERY, cache=False))
                # One settled read after the writer finishes.
                observed.append(db.query(QUERY, cache=False))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert observed
        for result in observed:
            assert any(result == snapshot for snapshot in snapshots), (
                "reader observed a torn result matching no committed step"
            )
        # The final read reflects the fully-applied script.
        assert observed[-1] == snapshots[-1]

    def test_interleaved_batch_mutations_settle_identically(self):
        """append_many/delete_many racing readers: final parity holds and
        mid-flight reads still match some committed state."""
        reference = make_db()
        db = make_db(n_shards=2, max_workers=2)
        for target in (reference, db):
            target.insert_all(corpus())

        tail = [1.0, 2.0, 4.0, 8.0, 4.0, 2.0]
        shape_query = ShapeQuery(
            goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5
        )
        before = reference.query(shape_query, cache=False)
        reference.append_many([(2, tail), (3, tail)])
        reference.delete_many([7, 8])
        after = reference.query(shape_query, cache=False)
        snapshots = [before, after]

        done = threading.Event()
        observed = []
        errors = []

        def writer():
            db.append_many([(2, tail), (3, tail)])
            db.delete_many([7, 8])
            done.set()

        def reader():
            try:
                while not done.is_set():
                    observed.append(db.query(shape_query, cache=False))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        # append_many + delete_many are each one committed step, so a
        # reader may also catch the intermediate (appended, not yet
        # deleted) state — compute it for the allowed set.
        intermediate_db = make_db()
        intermediate_db.insert_all(corpus())
        intermediate_db.append_many([(2, tail), (3, tail)])
        snapshots.append(intermediate_db.query(shape_query, cache=False))
        for result in observed:
            assert any(result == snapshot for snapshot in snapshots)
        assert db.query(shape_query, cache=False) == after
