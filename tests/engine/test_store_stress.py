"""Interleaved insert/delete/re-insert stress over the whole engine.

Every mutation phase must leave the columnar store internally
consistent (`check_consistency`) and the engine byte-identical to the
legacy oracle for *every* query type — the insert-only parity suite
cannot see offset-table corruption that only compaction can introduce.
"""

from __future__ import annotations

import numpy as np

from repro.query import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus, goalpost_fever, k_peak_sequence

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def every_query_type():
    return [
        PatternQuery(GOALPOST),
        PatternQuery("(0|-)* + (0|-)*", collapse_runs=False),
        PeakCountQuery(2, count_tolerance=1),
        IntervalQuery(12.0, 3.0),
        SteepnessQuery(1.0, slope_tolerance=0.5),
        ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5),
        ExemplarQuery(k_peak_sequence([6.0, 18.0], noise=0.0), epsilon=0.5),
    ]


def assert_engine_sound(db):
    db.store.check_consistency()
    assert list(db.store.sequence_ids) == db.ids()
    for query in every_query_type():
        engine = db.query(query, cache=False)
        legacy = db.query(query, engine=False)
        assert engine == legacy, type(query).__name__
        cached_cold = db.query(query)
        cached_warm = db.query(query)
        assert cached_cold == engine and cached_warm == engine, type(query).__name__


class TestInterleavedMutationStress:
    def test_scripted_churn(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        corpus = fever_corpus(n_two_peak=5, n_one_peak=4, n_three_peak=4)
        db.insert_all(corpus[:8])
        assert_engine_sound(db)

        for victim in (0, 3, 7):
            db.delete(victim)
        assert_engine_sound(db)

        db.insert_all(corpus[8:])
        db.insert(k_peak_sequence([8.0, 16.0], noise=0.1, name="straggler"))
        assert_engine_sound(db)

        # Delete everything that currently matches the goal-post query,
        # then re-insert fresh two-peak curves: the old answers must not
        # survive anywhere (indexes, columns, cache).
        for match in db.query(PatternQuery(GOALPOST)):
            db.delete(match.sequence_id)
        assert db.query(PatternQuery(GOALPOST), cache=False) == []
        db.insert_all(fever_corpus(n_two_peak=3, n_one_peak=0, n_three_peak=0))
        assert len(db.query(PatternQuery(GOALPOST), cache=False)) == 3
        assert_engine_sound(db)

    def test_randomized_churn(self):
        rng = np.random.default_rng(17)
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        pool = fever_corpus(n_two_peak=6, n_one_peak=6, n_three_peak=6)
        cursor = 0
        for round_no in range(6):
            take = int(rng.integers(1, 4))
            batch = [pool[(cursor + i) % len(pool)] for i in range(take)]
            cursor += take
            db.insert_all(batch)
            live = db.ids()
            for victim in rng.choice(live, size=min(len(live) - 1, 2), replace=False):
                db.delete(int(victim))
            db.store.check_consistency()
        assert_engine_sound(db)

    def test_drain_to_empty_and_refill(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert_all(fever_corpus(n_two_peak=2, n_one_peak=2, n_three_peak=2))
        for sequence_id in list(db.ids()):
            db.delete(sequence_id)
        db.store.check_consistency()
        assert db.store.n_sequences == 0
        assert db.store.n_segments == 0
        assert db.store.n_behavior == 0
        assert db.store.n_rr == 0
        for query in every_query_type():
            assert db.query(query, cache=False) == []
        db.insert_all(fever_corpus(n_two_peak=2, n_one_peak=1, n_three_peak=1))
        assert_engine_sound(db)


class TestMutationKeepsAllIndexesAligned:
    def test_indexes_and_store_agree_after_churn(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert_all(fever_corpus(n_two_peak=4, n_one_peak=3, n_three_peak=3))
        for victim in (1, 5):
            db.delete(victim)
        db.insert(k_peak_sequence([6.0, 18.0], noise=0.3, name="fresh"))
        for sequence_id in db.ids():
            assert db.store.symbols_of(sequence_id) == db.pattern_index.symbols_of(
                sequence_id
            )
            assert db.store.symbols_of(
                sequence_id, collapse_runs=True
            ) == db.behavior_index.symbols_of(sequence_id)
            peak_times = [peak.time for peak in db.peaks_of(sequence_id)]
            np.testing.assert_array_equal(
                db.rr_intervals_of(sequence_id), np.diff(np.asarray(peak_times, dtype=float))
            )
        db.rr_index.check_invariants()
