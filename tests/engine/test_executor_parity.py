"""Engine vs legacy parity: identical results for every query type.

The vectorized executor must be indistinguishable from the legacy
per-sequence path — same matches, same grades, same per-dimension
deviation floats, same order.  ``QueryMatch`` is a frozen dataclass, so
``==`` compares every field including the deviation tuples; list
equality is therefore the byte-identical check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.query.results import QueryMatch
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus, goalpost_fever, k_peak_sequence

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


@pytest.fixture(scope="module")
def fever_db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=6, n_one_peak=4, n_three_peak=4))
    return db


@pytest.fixture(scope="module")
def ecg_db():
    db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
    db.insert_all(ecg_corpus(n_sequences=25, seed=3))
    return db


def assert_paths_identical(db, query, include_approximate=True):
    engine = db.query(query, include_approximate=include_approximate)
    legacy = db.query(query, include_approximate=include_approximate, engine=False)
    assert engine == legacy
    return engine


FEVER_QUERIES = [
    PatternQuery(GOALPOST),
    PatternQuery("(0|-)* + (0|-)*", collapse_runs=False),
    PeakCountQuery(2),
    PeakCountQuery(2, count_tolerance=1),
    PeakCountQuery(7),
    SteepnessQuery(1.0),
    SteepnessQuery(3.0, slope_tolerance=1.5),
    SteepnessQuery(100.0),
    IntervalQuery(12.0, 2.0),
    IntervalQuery(12.0, 0.0),
    ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5),
    ExemplarQuery(k_peak_sequence([6.0, 18.0], noise=0.0), epsilon=0.5),
    ExemplarQuery(goalpost_fever(n_points=33), epsilon=100.0),
]


class TestParityOnFever:
    @pytest.mark.parametrize("query", FEVER_QUERIES, ids=lambda q: type(q).__name__)
    def test_engine_matches_legacy(self, fever_db, query):
        assert_paths_identical(fever_db, query)

    @pytest.mark.parametrize("query", FEVER_QUERIES, ids=lambda q: type(q).__name__)
    def test_exact_only(self, fever_db, query):
        assert_paths_identical(fever_db, query, include_approximate=False)


class TestParityOnEcg:
    @pytest.mark.parametrize(
        "target,delta", [(120.0, 5.0), (150.0, 10.0), (180.0, 2.0), (110.0, 0.0)]
    )
    def test_interval_queries(self, ecg_db, target, delta):
        matches = assert_paths_identical(ecg_db, IntervalQuery(target, delta))
        assert {m.sequence_id for m in matches} == set(ecg_db.scan_rr(target, delta))

    def test_peak_and_steepness(self, ecg_db):
        assert_paths_identical(ecg_db, PeakCountQuery(3, count_tolerance=1))
        assert_paths_identical(ecg_db, SteepnessQuery(5.0, slope_tolerance=2.0))


class TestParityAfterDeletion:
    def test_all_types_after_deletes(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert_all(fever_corpus(n_two_peak=5, n_one_peak=3, n_three_peak=3))
        for victim in (0, 4, 10):
            db.delete(victim)
        db.insert(k_peak_sequence([8.0, 16.0], noise=0.1, name="late"))
        db.store.check_consistency()
        for query in [
            PatternQuery(GOALPOST),
            PeakCountQuery(2, count_tolerance=1),
            SteepnessQuery(1.0),
            IntervalQuery(10.0, 4.0),
            ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5),
        ]:
            assert_paths_identical(db, query)


class TestEngineSemantics:
    def test_empty_database(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        assert db.query(PeakCountQuery(2)) == []
        assert db.query(SteepnessQuery(1.0)) == []
        assert db.query(IntervalQuery(10.0, 2.0)) == []
        assert db.scan_rr(10.0, 2.0) == []

    def test_explain_names_vectorized_stages(self, fever_db):
        assert "vectorized-grade" in fever_db.explain(PeakCountQuery(2))
        assert "index-probe" in fever_db.explain(IntervalQuery(12.0, 1.0))
        assert "columnar-prefilter" in fever_db.explain(ShapeQuery(goalpost_fever()))
        # Pattern queries tabulate to a DFA and grade over the symbol columns.
        assert "vectorized-grade" in fever_db.explain(PatternQuery(GOALPOST))
        assert "vectorized-grade" in fever_db.explain(
            PatternQuery("(0|-)* + (0|-)*", collapse_runs=False)
        )

    def test_third_party_query_runs_through_engine(self, fever_db):
        """A subclass overriding only the legacy API still executes."""
        from repro.core.tolerance import DimensionDeviation, grade_deviations
        from repro.query.queries import Query

        class LengthQuery(Query):
            def candidates(self, database):
                return database.ids()[:5]

            def grade(self, database, sequence_id):
                amount = abs(len(database.representation_of(sequence_id)) - 10)
                deviation = DimensionDeviation("segment_count", float(amount), 5.0)
                return QueryMatch(
                    sequence_id,
                    database.name_of(sequence_id),
                    grade_deviations([deviation]),
                    (deviation,),
                )

        assert_paths_identical(fever_db, LengthQuery())

    def test_shape_prefilter_has_no_false_dismissals(self, fever_db):
        query = ShapeQuery(goalpost_fever(), duration_tolerance=1.0, amplitude_tolerance=1.0)
        survivors = set(query._prefilter(fever_db, fever_db.store, None))
        for sequence_id in fever_db.ids():
            match = query.grade(fever_db, sequence_id)
            if match.grade.value != "reject":
                assert sequence_id in survivors

    def test_exemplar_prefilter_skips_archive_reads(self, fever_db):
        wrong_length = ExemplarQuery(goalpost_fever(n_points=33), epsilon=100.0)
        reads_before = fever_db.archive.log.reads
        assert fever_db.query(wrong_length) == []
        assert fever_db.archive.log.reads == reads_before

    def test_insert_representation_is_queryable(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        rep = InterpolationBreaker(0.5).represent(
            goalpost_fever(), curve_kind="regression"
        )
        sequence_id = db.insert_representation(rep, name="pre-broken")
        matches = db.query(PatternQuery(GOALPOST))
        assert [m.sequence_id for m in matches] == [sequence_id]
        assert_paths_identical(db, PeakCountQuery(2))

    def test_scan_rr_matches_per_sequence_definition(self, ecg_db):
        for target, delta in [(120.0, 5.0), (150.0, 10.0)]:
            expected = sorted(
                sequence_id
                for sequence_id in ecg_db.ids()
                if len(ecg_db.rr_intervals_of(sequence_id))
                and bool(
                    (np.abs(ecg_db.rr_intervals_of(sequence_id) - target) <= delta).any()
                )
            )
            assert ecg_db.scan_rr(target, delta) == expected
