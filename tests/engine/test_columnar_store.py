"""Tests for the columnar segment store: offset-table integrity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import EngineError
from repro.engine import ColumnarSegmentStore
from repro.query import SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus


@pytest.fixture
def db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=4, n_one_peak=3, n_three_peak=3))
    return db


class TestColumnsMirrorRepresentations:
    def test_row_counts(self, db):
        assert db.store.n_sequences == len(db)
        assert db.store.n_segments == sum(len(db.representation_of(i)) for i in db.ids())
        assert db.store.n_rr == sum(len(db.rr_intervals_of(i)) for i in db.ids())

    def test_segment_columns_match_objects(self, db):
        for sequence_id in db.ids():
            lo, hi = db.store.segment_range(sequence_id)
            rep = db.representation_of(sequence_id)
            assert hi - lo == len(rep)
            np.testing.assert_array_equal(
                db.store.segment_column("start_index")[lo:hi],
                [s.start_index for s in rep],
            )
            np.testing.assert_array_equal(
                db.store.segment_column("end_value")[lo:hi],
                [s.end_point[1] for s in rep],
            )
            np.testing.assert_array_equal(db.store.segment_slopes[lo:hi], rep.slopes())

    def test_sequence_scalars_match(self, db):
        positions = db.store.positions_of(db.ids())
        np.testing.assert_array_equal(db.store.sequence_ids[positions], db.ids())
        for sequence_id in db.ids():
            p = db.store.position_of(sequence_id)
            assert int(db.store.peak_counts[p]) == db.peak_count_of(sequence_id)
            assert int(db.store.source_lengths[p]) == db.representation_of(
                sequence_id
            ).source_length
            rising = [s for s in db.representation_of(sequence_id).slopes() if s > 0]
            assert float(db.store.max_rising_slopes[p]) == (max(rising) if rising else 0.0)

    def test_rr_columns_match(self, db):
        for sequence_id in db.ids():
            lo, hi = db.store.rr_range(sequence_id)
            np.testing.assert_array_equal(
                db.store.rr_values[lo:hi], db.rr_intervals_of(sequence_id)
            )

    def test_consistency_after_bulk_ingest(self, db):
        db.store.check_consistency()


class TestInsertDeleteRoundTrip:
    def test_delete_compacts_offsets(self, db):
        before_segments = db.store.n_segments
        victim = 4
        victim_segments = len(db.representation_of(victim))
        db.delete(victim)
        db.store.check_consistency()
        assert db.store.n_sequences == len(db)
        assert db.store.n_segments == before_segments - victim_segments
        assert victim not in db.store

    def test_delete_first_and_last(self, db):
        db.delete(db.ids()[0])
        db.delete(db.ids()[-1])
        db.store.check_consistency()
        assert list(db.store.sequence_ids) == db.ids()

    def test_interleaved_insert_delete(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
        corpus = ecg_corpus(n_sequences=12, seed=21)
        db.insert_all(corpus[:8])
        db.delete(2)
        db.delete(5)
        db.insert_all(corpus[8:])
        db.store.check_consistency()
        assert list(db.store.sequence_ids) == db.ids()
        for sequence_id in db.ids():
            lo, hi = db.store.segment_range(sequence_id)
            np.testing.assert_array_equal(
                db.store.segment_slopes[lo:hi], db.representation_of(sequence_id).slopes()
            )
            rr_lo, rr_hi = db.store.rr_range(sequence_id)
            np.testing.assert_array_equal(
                db.store.rr_values[rr_lo:rr_hi], db.rr_intervals_of(sequence_id)
            )

    def test_single_insert_matches_bulk(self):
        corpus = fever_corpus(n_two_peak=3, n_one_peak=2, n_three_peak=2)
        one = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        for sequence in corpus:
            one.insert(sequence)
        bulk = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        bulk.insert_all(corpus)
        np.testing.assert_array_equal(one.store.sequence_ids, bulk.store.sequence_ids)
        np.testing.assert_array_equal(one.store.segment_slopes, bulk.store.segment_slopes)
        np.testing.assert_array_equal(one.store.rr_values, bulk.store.rr_values)
        np.testing.assert_array_equal(one.store.peak_counts, bulk.store.peak_counts)
        one.store.check_consistency()
        bulk.store.check_consistency()


class TestStoreErrors:
    def test_unknown_id_rejected(self, db):
        with pytest.raises(EngineError):
            db.store.position_of(999)
        with pytest.raises(EngineError):
            db.store.positions_of([0, 999])

    def test_out_of_order_insert_rejected(self, db):
        rep = db.representation_of(3)
        with pytest.raises(EngineError):
            db.store.insert(1, rep, peak_count=2, rr=np.array([1.0]))

    def test_empty_store_lookup(self):
        store = ColumnarSegmentStore()
        store.check_consistency()
        with pytest.raises(EngineError):
            store.position_of(0)
        assert store.positions_of([]).size == 0


class TestDeletionReclaimsStorage:
    def test_local_store_and_catalog_evicted(self, db):
        before = db.storage_report()["representation_bytes"]
        assert db.catalog.variants_of(0) == ["default"]
        db.delete(0)
        after = db.storage_report()["representation_bytes"]
        assert after < before
        assert db.catalog.variants_of(0) == []
        assert (0, "default") not in db.local_store

    def test_variants_evicted_too(self, db):
        db.add_variant(1, "coarse", InterpolationBreaker(2.0))
        with_variant = db.local_store.total_bytes()
        db.delete(1)
        assert db.local_store.total_bytes() < with_variant
        assert db.catalog.variants_of(1) == []
        assert 1 not in db.local_store

    def test_report_counts_only_live_sequences(self, db):
        live = len(db) - 1
        db.delete(2)
        report = db.storage_report()
        assert report["sequences"] == live
        # Raw blobs stay archived (append-only tier), representations do not.
        assert 2 in db.archive


class TestAmortizedGrowth:
    """Single-row inserts must reuse over-allocated capacity, not
    rebuild every column array per call (geometric growth + live-length
    views), and mass deletion must hand memory back."""

    def _items(self, n):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert_all(fever_corpus(n_two_peak=n - 2 * (n // 3), n_one_peak=n // 3, n_three_peak=n // 3))
        return [
            (i, db.representation_of(i), db.peak_count_of(i), db.rr_intervals_of(i))
            for i in db.ids()
        ]

    def test_single_row_inserts_reallocate_logarithmically(self):
        items = self._items(60)
        store = ColumnarSegmentStore(theta=0.05)
        buffer_addresses = set()
        for item in items:
            store.insert(item[0], item[1], peak_count=item[2], rr=item[3])
            column = store._sequences.column("sequence_id")
            buffer_addresses.add(column.__array_interface__["data"][0])
        # 60 appends into a doubling allocation: a handful of distinct
        # buffers (16 → 32 → 64), never one per insert.
        assert len(buffer_addresses) <= 4
        assert store._sequences.capacity >= len(store)
        store.check_consistency()

    def test_capacity_stays_within_constant_factor(self):
        items = self._items(40)
        store = ColumnarSegmentStore(theta=0.05)
        store.extend(items)
        grown = store.nbytes
        for sequence_id, *_ in items[:-4]:
            store.delete(sequence_id)
        store.check_consistency()
        # Occupancy fell to 10%: the shrink-on-delete hysteresis must
        # have returned most of the allocation.
        assert store.nbytes < grown / 2
        assert store._segments.capacity >= len(store._segments)

    def test_shrink_preserves_contents(self):
        items = self._items(30)
        store = ColumnarSegmentStore(theta=0.05)
        store.extend(items)
        keep = items[-3:]
        for sequence_id, *_ in items[:-3]:
            store.delete(sequence_id)
        store.check_consistency()
        for sequence_id, representation, peak_count, rr in keep:
            assert store.peak_count_of(sequence_id) == peak_count
            np.testing.assert_array_equal(store.rr_intervals_of(sequence_id), rr)
            assert len(store.symbols_of(sequence_id)) == len(representation)
