"""The store's symbol columns mirror the pattern indexes exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import PatternQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus, goalpost_fever, k_peak_sequence

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


@pytest.fixture
def db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=4, n_one_peak=3, n_three_peak=3))
    return db


class TestSymbolColumnsMirrorIndexes:
    def test_positional_column_matches_trie(self, db):
        for sequence_id in db.ids():
            assert db.store.symbols_of(sequence_id) == db.pattern_index.symbols_of(
                sequence_id
            )

    def test_behavior_column_matches_trie(self, db):
        for sequence_id in db.ids():
            assert db.store.symbols_of(
                sequence_id, collapse_runs=True
            ) == db.behavior_index.symbols_of(sequence_id)

    def test_columns_match_representation_strings(self, db):
        for sequence_id in db.ids():
            rep = db.representation_of(sequence_id)
            assert db.store.symbols_of(sequence_id) == rep.symbol_string(db.theta)
            assert db.store.symbols_of(sequence_id, collapse_runs=True) == rep.symbol_string(
                db.theta, collapse_runs=True
            )

    def test_nonzero_theta_respected(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
        db.insert_all(ecg_corpus(n_sequences=6, seed=7))
        assert db.store.theta == 5.0
        for sequence_id in db.ids():
            rep = db.representation_of(sequence_id)
            assert db.store.symbols_of(sequence_id) == rep.symbol_string(5.0)

    def test_behavior_rows_never_exceed_segment_rows(self, db):
        assert db.store.n_behavior <= db.store.n_segments
        counts = np.asarray(db.store.behavior_counts)
        assert bool((counts >= 1).all())


class TestSymbolColumnsSurviveMutation:
    def test_delete_compacts_symbol_columns(self, db):
        victims = [db.ids()[0], db.ids()[3], db.ids()[-1]]
        for victim in victims:
            db.delete(victim)
        db.store.check_consistency()
        for sequence_id in db.ids():
            assert db.store.symbols_of(sequence_id) == db.pattern_index.symbols_of(
                sequence_id
            )
            assert db.store.symbols_of(
                sequence_id, collapse_runs=True
            ) == db.behavior_index.symbols_of(sequence_id)

    def test_reinsert_after_delete(self, db):
        db.delete(db.ids()[2])
        new_id = db.insert(k_peak_sequence([6.0, 18.0], noise=0.2, name="late"))
        db.store.check_consistency()
        rep = db.representation_of(new_id)
        assert db.store.symbols_of(new_id) == rep.symbol_string(db.theta)

    def test_insert_representation_gets_symbol_columns(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        rep = InterpolationBreaker(0.5).represent(goalpost_fever(), curve_kind="regression")
        sequence_id = db.insert_representation(rep, name="pre-broken")
        db.store.check_consistency()
        assert db.store.symbols_of(sequence_id) == rep.symbol_string(db.theta)

    def test_generation_counts_mutations(self, db):
        generation = db.store.generation
        db.insert(k_peak_sequence([6.0], noise=0.0, name="one"))
        assert db.store.generation == generation + 1
        db.delete(db.ids()[-1])
        assert db.store.generation == generation + 2
        db.insert_all(fever_corpus(n_two_peak=1, n_one_peak=1, n_three_peak=0))
        assert db.store.generation == generation + 3


class TestVectorizedPatternUsesColumns:
    def test_pattern_query_matches_probe_answer(self, db):
        query = PatternQuery(GOALPOST)
        engine_ids = [m.sequence_id for m in db.query(query)]
        assert engine_ids == db.behavior_index.match_full(query.pattern)

    def test_positional_pattern_query(self, db):
        query = PatternQuery("(0|-)* + (0|-)*", collapse_runs=False)
        engine_ids = [m.sequence_id for m in db.query(query)]
        assert engine_ids == db.pattern_index.match_full(query.pattern)
