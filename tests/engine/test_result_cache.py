"""Plan-level result cache: hits, misses, and generation invalidation."""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.core.errors import EngineError
from repro.engine import PlanResultCache
from repro.query import (
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.query.queries import Query
from repro.query.results import QueryMatch
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus, goalpost_fever, k_peak_sequence

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


@pytest.fixture
def db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=4, n_one_peak=3, n_three_peak=3))
    return db


class CountingQuery(PeakCountQuery):
    """A fingerprinted query that counts how often its stages run."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.vector_calls = 0

    def _vector_filter(self, database, store, candidate_ids):
        self.vector_calls += 1
        return super()._vector_filter(database, store, candidate_ids)


class TestHitsAndMisses:
    def test_requery_hits_and_skips_stages(self, db):
        query = CountingQuery(2)
        first = db.query(query)
        assert query.vector_calls == 1
        second = db.query(query)
        assert query.vector_calls == 1  # no stage ran on the hit
        assert first == second
        assert db.result_cache.hits == 1
        assert db.result_cache.misses == 1

    def test_equal_queries_share_entries(self, db):
        db.query(PeakCountQuery(2))
        db.query(PeakCountQuery(2))  # distinct object, same fingerprint
        assert db.result_cache.hits == 1
        db.query(PeakCountQuery(2, count_tolerance=1))  # different fingerprint
        assert db.result_cache.misses == 2

    def test_include_approximate_keyed_separately(self, db):
        query = PeakCountQuery(2, count_tolerance=1)
        broad = db.query(query, include_approximate=True)
        narrow = db.query(query, include_approximate=False)
        assert db.result_cache.hits == 0
        assert narrow == [m for m in broad if m.is_exact]
        assert db.query(query, include_approximate=False) == narrow
        assert db.result_cache.hits == 1

    def test_cache_false_bypasses(self, db):
        query = CountingQuery(2)
        db.query(query, cache=False)
        db.query(query, cache=False)
        assert query.vector_calls == 2
        assert db.result_cache.stats()["entries"] == 0

    def test_every_builtin_query_type_is_cacheable(self, db):
        queries = [
            PatternQuery(GOALPOST),
            PeakCountQuery(2),
            IntervalQuery(12.0, 2.0),
            SteepnessQuery(1.0),
            ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5),
        ]
        for query in queries:
            assert query.fingerprint() is not None
            first = db.query(query)
            assert db.query(query) == first
        assert db.result_cache.hits == len(queries)

    def test_subclass_does_not_share_parent_cache_entries(self, db):
        # A subclass may override grading semantics; its fingerprint
        # embeds the concrete class, so it can never be served the
        # parent's memoized results (or vice versa).
        class StrictPeaks(PeakCountQuery):
            pass

        assert PeakCountQuery(2).fingerprint() != StrictPeaks(2).fingerprint()
        db.query(PeakCountQuery(2))
        db.query(StrictPeaks(2))
        assert db.result_cache.hits == 0
        assert db.result_cache.misses == 2

    def test_third_party_query_without_fingerprint_is_uncacheable(self, db):
        class AdHoc(Query):
            def grade(self, database, sequence_id):
                from repro.core.tolerance import MatchGrade

                return QueryMatch(sequence_id, database.name_of(sequence_id), MatchGrade.EXACT)

        query = AdHoc()
        assert query.fingerprint() is None
        db.query(query)
        db.query(query)
        assert db.result_cache.stats()["entries"] == 0
        assert "uncacheable" in db.explain(query)


class TestInvalidation:
    def test_insert_invalidates(self, db):
        query = PeakCountQuery(2)
        before = db.query(query)
        new_id = db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="fresh"))
        after = db.query(query)
        assert db.result_cache.hits == 0
        assert new_id in {m.sequence_id for m in after}
        assert {m.sequence_id for m in after} == {m.sequence_id for m in before} | {new_id}

    def test_insert_all_and_insert_representation_invalidate(self, db):
        query = PatternQuery(GOALPOST)
        db.query(query)
        db.insert_all(fever_corpus(n_two_peak=1, n_one_peak=0, n_three_peak=0))
        db.query(query)
        assert db.result_cache.hits == 0
        rep = InterpolationBreaker(0.5).represent(goalpost_fever(), curve_kind="regression")
        db.insert_representation(rep, name="pre-broken")
        db.query(query)
        assert db.result_cache.hits == 0
        assert db.result_cache.invalidations == 2

    def test_delete_invalidates(self, db):
        query = PeakCountQuery(2)
        before = db.query(query)
        victim = before[0].sequence_id
        db.delete(victim)
        after = db.query(query)
        assert db.result_cache.hits == 0
        assert victim not in {m.sequence_id for m in after}

    def test_breaker_reassignment_invalidates(self, db):
        # Reassigning the pipeline's breaker changes what ShapeQuery
        # matches; the cached answer must not survive it.
        query = ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5)
        db.query(query)
        db.breaker = InterpolationBreaker(8.0)
        assert "cache-miss" in db.explain(query)
        assert db.query(query) == db.query(query, engine=False)
        assert db.result_cache.hits == 0

    def test_hit_resumes_after_requery(self, db):
        query = SteepnessQuery(1.0)
        db.query(query)
        db.delete(db.ids()[0])
        db.query(query)
        db.query(query)
        assert db.result_cache.hits == 1


class TestExplainShowsCacheState:
    def test_miss_then_hit_then_delta(self, db):
        query = PeakCountQuery(2)
        assert "cache-miss" in db.explain(query)
        db.query(query)
        assert "cache-hit" in db.explain(query)
        db.insert(k_peak_sequence([6.0], noise=0.0, name="bump"))
        # The stale entry would be patched, not recomputed: one dirty id.
        assert "cache: delta-revalidated (1 dirty)" in db.explain(query)

    def test_explain_does_not_touch_stats(self, db):
        query = PeakCountQuery(2)
        db.query(query)
        stats = db.result_cache.stats()
        db.explain(query)
        assert db.result_cache.stats() == stats


class TestCacheMechanics:
    def test_lru_eviction(self):
        cache = PlanResultCache(max_entries=2)
        cache.store(("a",), 0, [])
        cache.store(("b",), 0, [])
        assert cache.lookup(("a",), 0) == []  # refresh "a"
        cache.store(("c",), 0, [])  # evicts "b"
        assert cache.lookup(("b",), 0) is None
        assert cache.lookup(("a",), 0) == []
        assert cache.lookup(("c",), 0) == []

    def test_stale_entry_retained_for_revalidation(self):
        # A stale entry is a miss, but it is *kept*: the executor
        # delta-revalidates it from the mutation journal instead of
        # recomputing the world.  Invalidation is counted once per
        # staleness, not once per lookup.
        cache = PlanResultCache()
        cache.store(("q",), 3, [])
        assert cache.lookup(("q",), 4) is None
        assert cache.invalidations == 1
        assert len(cache) == 1
        assert cache.lookup(("q",), 4) is None
        assert cache.invalidations == 1
        assert cache.misses == 2
        epoch, matches, vector = cache.stale_entry(("q",), 4)
        assert epoch == 3 and matches == () and vector is None
        # Refreshing it at the new epoch makes it a hit again.
        cache.revalidate(("q",), 4, (7,), [], dirty_count=2)
        assert cache.stale_entry(("q",), 4) is None
        assert cache.lookup(("q",), 4) == []
        assert cache.revalidations == 1
        assert cache.delta_hits == 1
        assert cache.delta_fallbacks == 0

    def test_returned_list_is_a_copy(self):
        cache = PlanResultCache()
        cache.store(("q",), 0, [])
        first = cache.lookup(("q",), 0)
        first.append("garbage")
        assert cache.lookup(("q",), 0) == []

    def test_bad_capacity_rejected(self):
        with pytest.raises(EngineError):
            PlanResultCache(max_entries=0)

    def test_cache_does_not_pin_the_database(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(k_peak_sequence([6.0], noise=0.0, name="solo"))
        db.query(PeakCountQuery(1))
        ref = weakref.ref(db)
        del db
        gc.collect()
        assert ref() is None


class TestQueryParametersAreFixed:
    """Cache fingerprints memoize query content, so the parameters they
    derive from are read-only; reassignment must fail, not poison."""

    def test_pattern_query_parameters_read_only(self):
        query = PatternQuery("+-")
        with pytest.raises(AttributeError):
            query.pattern = "(0|-)*"
        with pytest.raises(AttributeError):
            query.collapse_runs = False

    def test_exemplar_query_exemplar_read_only(self):
        query = PeakCountQuery(2)
        with pytest.raises(AttributeError):
            query.count = 3  # query-defining params are read-only everywhere
        from repro.query import ExemplarQuery
        from repro.workloads import goalpost_fever

        exemplar_query = ExemplarQuery(goalpost_fever(), epsilon=1.0)
        with pytest.raises(AttributeError):
            exemplar_query.exemplar = goalpost_fever(n_points=33)

    def test_keep_raw_mutation_invalidates_cache(self):
        from repro.core.errors import QueryError
        from repro.query import ExemplarQuery
        from repro.workloads import goalpost_fever

        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(goalpost_fever())
        query = ExemplarQuery(goalpost_fever(), epsilon=100.0)
        assert len(db.query(query)) == 1
        db.keep_raw = False
        with pytest.raises(QueryError, match="keep_raw"):
            db.query(query)  # must re-evaluate and raise, not serve stale


class TestSizeAwareEviction:
    """The cache is bounded by estimated entry bytes, not just count."""

    def _matches(self, n, name="x" * 40):
        from repro.core.tolerance import DimensionDeviation, MatchGrade

        return [
            QueryMatch(
                i,
                name,
                MatchGrade.APPROXIMATE,
                (DimensionDeviation("peak_count", 1.0, 2.0),),
            )
            for i in range(n)
        ]

    def test_bytes_tracked_and_released(self):
        cache = PlanResultCache(max_entries=8, max_bytes=1 << 20)
        assert cache.estimated_bytes == 0
        cache.store(("a",), 0, self._matches(10))
        one_entry = cache.estimated_bytes
        assert one_entry > 0
        cache.store(("b",), 0, self._matches(10))
        assert cache.estimated_bytes > one_entry
        # Stale entries stay resident (awaiting delta revalidation) and
        # keep paying for their bytes until replaced or cleared.
        assert cache.lookup(("a",), 1) is None
        assert cache.lookup(("b",), 1) is None
        assert cache.estimated_bytes > one_entry
        cache.clear()
        assert cache.estimated_bytes == 0

    def test_revalidation_accounts_patched_payload(self):
        # The byte budget must reflect what the entry holds *now*: a
        # revalidated answer that shrank (or grew) re-estimates from the
        # patched match list, not the original insert.
        cache = PlanResultCache(max_entries=8, max_bytes=1 << 20)
        cache.store(("q",), 0, self._matches(200), vector=(0,))
        original = cache.estimated_bytes
        cache.revalidate(("q",), 1, (1,), self._matches(3), dirty_count=5)
        shrunk = cache.estimated_bytes
        assert shrunk < original
        control = PlanResultCache(max_entries=8, max_bytes=1 << 20)
        control.store(("q",), 1, self._matches(3), vector=(1,))
        assert shrunk == control.estimated_bytes
        cache.revalidate(("q",), 2, (2,), self._matches(400), dirty_count=5)
        assert cache.estimated_bytes > original

    def test_byte_budget_evicts_lru(self):
        cache = PlanResultCache(max_entries=100, max_bytes=None)
        cache.store(("probe",), 0, self._matches(25))
        per_entry = cache.estimated_bytes
        budget = int(per_entry * 2.5)  # room for two entries, not three
        cache = PlanResultCache(max_entries=100, max_bytes=budget)
        cache.store(("a",), 0, self._matches(25))
        cache.store(("b",), 0, self._matches(25))
        cache.store(("c",), 0, self._matches(25))
        assert cache.lookup(("a",), 0) is None  # oldest evicted by bytes
        assert cache.lookup(("b",), 0) is not None
        assert cache.lookup(("c",), 0) is not None
        assert cache.evictions == 1
        assert cache.estimated_bytes <= budget

    def test_more_matches_cost_more(self):
        small = PlanResultCache()
        small.store(("q",), 0, self._matches(5))
        large = PlanResultCache()
        large.store(("q",), 0, self._matches(500))
        assert large.estimated_bytes > small.estimated_bytes

    def test_oversized_answer_not_cached(self):
        cache = PlanResultCache(max_entries=8, max_bytes=512)
        cache.store(("huge",), 0, self._matches(1000))
        assert len(cache) == 0
        assert cache.oversized == 1
        assert cache.lookup(("huge",), 0) is None
        # A small answer still caches fine under the same budget.
        cache.store(("tiny",), 0, [])
        assert cache.lookup(("tiny",), 0) == []

    def test_restore_replaces_old_bytes(self):
        cache = PlanResultCache(max_entries=8, max_bytes=1 << 20)
        cache.store(("q",), 0, self._matches(100))
        big = cache.estimated_bytes
        cache.store(("q",), 1, self._matches(2))
        assert len(cache) == 1
        assert cache.estimated_bytes < big

    def test_clear_resets_bytes(self):
        cache = PlanResultCache()
        cache.store(("q",), 0, self._matches(10))
        cache.clear()
        assert cache.estimated_bytes == 0
        assert len(cache) == 0

    def test_bad_byte_budget_rejected(self):
        with pytest.raises(EngineError):
            PlanResultCache(max_bytes=0)

    def test_stats_surface_through_storage_report(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(k_peak_sequence([6.0], noise=0.0, name="solo"))
        db.query(PeakCountQuery(1))
        db.query(PeakCountQuery(1))
        stats = db.storage_report()["result_cache"]
        assert stats == db.cache_stats() == db.result_cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["estimated_bytes"] > 0
        for key in ("max_entries", "max_bytes", "misses", "invalidations", "evictions", "oversized"):
            assert key in stats
