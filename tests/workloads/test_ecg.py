"""Tests for the synthetic ECG generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.core.features import raw_peak_indices
from repro.workloads import ecg_corpus, synthetic_ecg


class TestSyntheticECG:
    def test_r_peaks_at_prescribed_distances(self):
        seq = synthetic_ecg(rr_intervals=[135, 175], n_points=500, noise=0.0, baseline_wander=0.0)
        peaks = raw_peak_indices(seq, prominence=100.0)
        assert len(peaks) == 3
        assert np.diff(peaks).tolist() == [135, 175]

    def test_amplitude_scale(self):
        seq = synthetic_ecg(rr_intervals=[150], r_amplitude=150.0, noise=0.0, baseline_wander=0.0)
        assert seq.values.max() == pytest.approx(150.0, rel=0.1)
        assert seq.values.min() < -15.0  # S dips go negative

    def test_beats_beyond_length_dropped(self):
        seq = synthetic_ecg(rr_intervals=[400, 400], n_points=500, noise=0.0, baseline_wander=0.0)
        peaks = raw_peak_indices(seq, prominence=100.0)
        assert len(peaks) == 2  # third beat would land at 840

    def test_deterministic(self):
        assert synthetic_ecg([100], seed=4) == synthetic_ecg([100], seed=4)

    def test_validation(self):
        with pytest.raises(SequenceError):
            synthetic_ecg([0])
        with pytest.raises(SequenceError):
            synthetic_ecg([100], first_beat=5)


class TestFigure9Pair:
    def test_shapes(self, ecg_pair):
        top, bottom = ecg_pair
        assert len(top) == 500
        assert len(bottom) == 500

    def test_rr_ground_truth(self, ecg_pair):
        top, bottom = ecg_pair
        assert np.diff(raw_peak_indices(top, prominence=100.0)).tolist() == [135, 175]
        assert np.diff(raw_peak_indices(bottom, prominence=100.0)).tolist() == [115, 135, 120]


class TestCorpus:
    def test_size_and_names(self):
        corpus = ecg_corpus(n_sequences=8)
        assert len(corpus) == 8
        assert corpus[0].name == "ecg-0"

    def test_rr_intervals_within_range(self):
        lo, hi = 100, 200
        for seq in ecg_corpus(n_sequences=10, rr_range=(lo, hi)):
            peaks = raw_peak_indices(seq, prominence=100.0)
            for d in np.diff(peaks):
                assert lo - 1 <= d <= hi + 1

    def test_bad_range_rejected(self):
        with pytest.raises(SequenceError):
            ecg_corpus(rr_range=(200, 100))
