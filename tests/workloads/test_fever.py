"""Tests for the goal-post fever workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.core.features import raw_peak_indices
from repro.workloads import (
    fever_corpus,
    figure3_sequence,
    figure4_fluctuated,
    figure5_variants,
    goalpost_fever,
    k_peak_sequence,
)


class TestGoalpostFever:
    def test_deterministic(self):
        assert goalpost_fever(seed=1, noise=0.1) == goalpost_fever(seed=1, noise=0.1)

    def test_two_ground_truth_peaks(self):
        seq = goalpost_fever(noise=0.0)
        assert len(raw_peak_indices(seq, prominence=2.0)) == 2

    def test_spans_24_hours(self):
        seq = goalpost_fever()
        assert seq.start_time == 0.0
        assert seq.end_time == 24.0

    def test_bad_peak_order_rejected(self):
        with pytest.raises(SequenceError):
            goalpost_fever(first_peak=18.0, second_peak=6.0)
        with pytest.raises(SequenceError):
            goalpost_fever(first_peak=-1.0)


class TestKPeaks:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_peak_count_matches(self, k):
        centers = list(np.linspace(4.0, 20.0, k))
        seq = k_peak_sequence(centers, noise=0.0)
        assert len(raw_peak_indices(seq, prominence=2.0)) == k

    def test_parameter_validation(self):
        with pytest.raises(SequenceError):
            k_peak_sequence([])
        with pytest.raises(SequenceError):
            k_peak_sequence([6.0], amplitudes=[1.0, 2.0])
        with pytest.raises(SequenceError):
            k_peak_sequence([6.0], widths=[0.0])


class TestPaperFigures:
    def test_figure3_shape(self):
        seq = figure3_sequence()
        assert seq.values.min() == pytest.approx(95.0)
        assert seq.values.max() == pytest.approx(107.0)
        assert len(raw_peak_indices(seq, prominence=3.0)) == 2

    def test_figure4_stays_in_band(self):
        base = figure3_sequence()
        noisy = figure4_fluctuated(delta=1.0)
        assert np.abs(noisy.values - base.values).max() <= 1.0

    def test_figure5_all_preserve_two_peaks(self):
        exemplar = figure3_sequence()
        for label, transform, variant in figure5_variants(exemplar):
            assert transform.preserves_peaks, label
            assert len(raw_peak_indices(variant, prominence=3.0)) == 2, label

    def test_figure5_labels_unique(self):
        labels = [label for label, __, ___ in figure5_variants(figure3_sequence())]
        assert len(labels) == len(set(labels)) == 6


class TestCorpus:
    def test_sizes_and_names(self):
        corpus = fever_corpus(n_two_peak=4, n_one_peak=3, n_three_peak=2)
        assert len(corpus) == 9
        assert sum("2p" in s.name for s in corpus) == 4
        assert sum("1p" in s.name for s in corpus) == 3
        assert sum("3p" in s.name for s in corpus) == 2

    def test_ground_truth_consistent_with_names(self):
        for seq in fever_corpus(n_two_peak=5, n_one_peak=5, n_three_peak=5, noise=0.0):
            expected = int(seq.name.split("-")[1][0])
            assert len(raw_peak_indices(seq, prominence=2.0)) == expected, seq.name

    def test_deterministic_by_seed(self):
        a = fever_corpus(seed=3)
        b = fever_corpus(seed=3)
        assert all(x == y for x, y in zip(a, b))
