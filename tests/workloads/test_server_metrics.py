"""Server-metrics workload generators: shape, determinism, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.workloads import cpu_trace, latency_trace, server_metrics_corpus


def test_latency_trace_baseline_and_bursts():
    trace = latency_trace(n_points=200, baseline=20.0, n_bursts=4, noise=0.0, seed=3)
    values = trace.values
    assert len(values) == 200
    # Most samples sit on the baseline; the bursts rise well above it.
    on_baseline = np.isclose(values, 20.0).sum()
    assert on_baseline > 120
    assert values.max() > 20.0 + 30.0
    assert values.min() >= 20.0
    flat = latency_trace(n_bursts=0, noise=0.0, baseline=5.0)
    assert np.allclose(flat.values, 5.0)


def test_cpu_trace_plateaus_and_ramps():
    trace = cpu_trace(n_points=150, levels=(10.0, 80.0, 30.0), noise=0.0, seed=4)
    values = trace.values
    assert len(values) == 150
    for level in (10.0, 80.0, 30.0):
        assert np.isclose(values, level).sum() > 20
    assert values.min() >= 10.0 - 1e-9
    assert values.max() <= 80.0 + 1e-9


def test_traces_deterministic_per_seed():
    assert np.array_equal(latency_trace(seed=9).values, latency_trace(seed=9).values)
    assert not np.array_equal(latency_trace(seed=9).values, latency_trace(seed=10).values)
    assert np.array_equal(cpu_trace(seed=9).values, cpu_trace(seed=9).values)
    assert not np.array_equal(cpu_trace(seed=9).values, cpu_trace(seed=10).values)


def test_corpus_families_names_and_determinism():
    corpus = server_metrics_corpus(n_sequences=24, n_families=6, seed=2)
    assert len(corpus) == 24
    assert corpus[0].name == "metrics-0-0"
    assert corpus[7].name == "metrics-1-7"
    again = server_metrics_corpus(n_sequences=24, n_families=6, seed=2)
    for a, b in zip(corpus, again):
        assert a.name == b.name
        assert np.array_equal(a.values, b.values)
    # Families live in separated amplitude bands: family 0's traces
    # stay well below family 5's baseline.
    family0 = [s for s in corpus if s.name.startswith("metrics-0-")]
    family5 = [s for s in corpus if s.name.startswith("metrics-5-")]
    assert max(float(s.values.mean()) for s in family0) < min(
        float(s.values.mean()) for s in family5
    )


def test_validation_errors():
    with pytest.raises(SequenceError):
        latency_trace(n_points=8)
    with pytest.raises(SequenceError):
        latency_trace(baseline=-1.0)
    with pytest.raises(SequenceError):
        latency_trace(burst_height=0.0)
    with pytest.raises(SequenceError):
        latency_trace(n_bursts=-1)
    with pytest.raises(SequenceError):
        cpu_trace(n_points=4)
    with pytest.raises(SequenceError):
        cpu_trace(levels=())
    with pytest.raises(SequenceError):
        cpu_trace(levels=(10.0, -5.0))
    with pytest.raises(SequenceError):
        cpu_trace(ramp=0)
    with pytest.raises(SequenceError):
        server_metrics_corpus(n_sequences=0)
    with pytest.raises(SequenceError):
        server_metrics_corpus(n_families=0)
