"""Tests for the seismic and stock workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.workloads import seismic_corpus, seismic_sequence, stock_corpus, stock_sequence


class TestSeismic:
    def test_events_visible(self):
        seq, events = seismic_sequence(n_points=1000, event_positions=[400], seed=1)
        background = np.abs(seq.values[:350]).max()
        burst = np.abs(seq.values[400:450]).max()
        assert burst > 5 * background

    def test_event_positions_returned(self):
        __, events = seismic_sequence(event_positions=[100, 900], n_points=2000)
        assert events == [100, 900]

    def test_random_events_generated(self):
        __, events = seismic_sequence(n_points=2000, seed=2)
        assert events
        assert all(0 <= e < 2000 for e in events)

    def test_bad_event_position_rejected(self):
        with pytest.raises(SequenceError):
            seismic_sequence(event_positions=[99999], n_points=100)

    def test_bad_amplitudes_rejected(self):
        with pytest.raises(SequenceError):
            seismic_sequence(event_amplitude=0.0)

    def test_corpus(self):
        corpus = seismic_corpus(n_sequences=4, n_points=1500)
        assert len(corpus) == 4
        for seq, events in corpus:
            assert len(seq) == 1500
            assert events


class TestStocks:
    def test_explicit_regimes(self):
        seq = stock_sequence(
            n_points=60,
            regimes=[(30, 1.0), (30, -1.0)],
            volatility=0.0,
            start_price=100.0,
        )
        assert seq.values[29] > seq.values[0]
        assert seq.values[-1] < seq.values[30]

    def test_prices_positive(self):
        for seq in stock_corpus(n_sequences=5, n_points=300):
            assert (seq.values > 0).all()

    def test_deterministic(self):
        assert stock_sequence(seed=7) == stock_sequence(seed=7)

    def test_validation(self):
        with pytest.raises(SequenceError):
            stock_sequence(start_price=0.0)
        with pytest.raises(SequenceError):
            stock_sequence(regimes=[(0, 1.0)])

    def test_corpus_names(self):
        corpus = stock_corpus(n_sequences=3)
        assert [s.name for s in corpus] == ["stock-0", "stock-1", "stock-2"]
