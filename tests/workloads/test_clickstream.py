"""Clickstream workload generators: shape, determinism, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.workloads import burst_trace, clickstream_corpus, session_trace


def test_session_trace_shape():
    trace = session_trace(n_points=120, peak=30.0, n_reengagements=2, noise=0.0, seed=3)
    values = trace.values
    assert len(values) == 120
    # Engagement actually climbs toward the peak band and idles below it.
    assert values.max() > 30.0 * 0.6
    assert values.min() < values.max() * 0.5
    # Multiple engagement cycles: the trace crosses its midline repeatedly.
    mid = (values.max() + values.min()) / 2
    crossings = int(np.sum(np.diff(values > mid) != 0))
    assert crossings >= 3


def test_burst_trace_ambient_and_bursts():
    trace = burst_trace(n_points=200, ambient=4.0, n_bursts=4, noise=0.0, seed=3)
    values = trace.values
    assert len(values) == 200
    on_ambient = np.isclose(values, 4.0).sum()
    assert on_ambient > 120
    assert values.max() > 4.0 + 15.0
    assert values.min() >= 4.0
    flat = burst_trace(n_bursts=0, noise=0.0, ambient=2.0)
    assert np.allclose(flat.values, 2.0)


def test_traces_deterministic_per_seed():
    assert np.array_equal(session_trace(seed=9).values, session_trace(seed=9).values)
    assert not np.array_equal(session_trace(seed=9).values, session_trace(seed=10).values)
    assert np.array_equal(burst_trace(seed=9).values, burst_trace(seed=9).values)
    assert not np.array_equal(burst_trace(seed=9).values, burst_trace(seed=10).values)


def test_corpus_families_and_names():
    corpus = clickstream_corpus(n_sequences=30, n_families=5, seed=7)
    assert len(corpus) == 30
    assert corpus[0].name == "click-0-0"
    assert corpus[13].name == "click-3-13"
    again = clickstream_corpus(n_sequences=30, n_families=5, seed=7)
    assert all(np.array_equal(a.values, b.values) for a, b in zip(corpus, again))
    other = clickstream_corpus(n_sequences=30, n_families=5, seed=8)
    assert not all(np.array_equal(a.values, b.values) for a, b in zip(corpus, other))


def test_corpus_is_motif_rich():
    # The whole point of the corpus: short slope motifs occur densely
    # in both symbol views once ingested.
    from repro.query.database import SequenceDatabase

    with SequenceDatabase() as db:
        db.insert_all(clickstream_corpus(n_sequences=40))
        assert db.count_matching("+-") > 10
        assert db.count_matching("-0") > 10
        positional = db.motif_positions("++--", collapse_runs=False)
        assert len(positional) > 5


@pytest.mark.parametrize(
    "factory, kwargs",
    [
        (session_trace, {"n_points": 8}),
        (session_trace, {"peak": 0.0}),
        (session_trace, {"n_reengagements": -1}),
        (session_trace, {"idle_depth": 1.5}),
        (session_trace, {"n_points": 16, "n_reengagements": 6}),
        (burst_trace, {"n_points": 8}),
        (burst_trace, {"burst_height": 0.0}),
        (burst_trace, {"ambient": -1.0}),
        (burst_trace, {"n_bursts": -1}),
        (clickstream_corpus, {"n_sequences": 0}),
        (clickstream_corpus, {"n_families": 0}),
    ],
)
def test_validation(factory, kwargs):
    with pytest.raises(SequenceError):
        factory(**kwargs)
