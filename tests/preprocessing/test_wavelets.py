"""Tests for the wavelet transform and compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SequenceError
from repro.core.features import raw_peak_indices
from repro.core.sequence import Sequence
from repro.preprocessing import compress_wavelet, dwt_level, idwt_level, wavedec, waverec
from repro.workloads import goalpost_fever


class TestSingleLevel:
    @pytest.mark.parametrize("wavelet", ["haar", "db4"])
    def test_perfect_reconstruction(self, wavelet):
        rng = np.random.default_rng(41)
        values = rng.normal(0, 1, 64)
        approx, detail = dwt_level(values, wavelet)
        restored = idwt_level(approx, detail, wavelet)
        assert np.allclose(restored, values, atol=1e-10)

    @pytest.mark.parametrize("wavelet", ["haar", "db4"])
    def test_energy_preserved(self, wavelet):
        """Parseval: orthonormal filters preserve the L2 norm."""
        rng = np.random.default_rng(42)
        values = rng.normal(0, 2, 128)
        approx, detail = dwt_level(values, wavelet)
        assert np.dot(values, values) == pytest.approx(
            np.dot(approx, approx) + np.dot(detail, detail), rel=1e-9
        )

    def test_haar_constant_has_zero_detail(self):
        approx, detail = dwt_level(np.full(16, 5.0), "haar")
        assert np.allclose(detail, 0.0)
        assert np.allclose(approx, 5.0 * np.sqrt(2.0))

    def test_db4_linear_has_zero_detail(self):
        # Daubechies-4 has two vanishing moments: linears vanish in the
        # detail band (up to the periodic wrap-around taps).
        values = np.arange(64, dtype=float)
        __, detail = dwt_level(values, "db4")
        assert np.abs(detail[:-1]).max() < 1e-9

    def test_odd_length_rejected(self):
        with pytest.raises(SequenceError):
            dwt_level(np.zeros(9), "haar")

    def test_unknown_wavelet_rejected(self):
        with pytest.raises(SequenceError):
            dwt_level(np.zeros(8), "sym9")

    def test_mismatched_bands_rejected(self):
        with pytest.raises(SequenceError):
            idwt_level(np.zeros(4), np.zeros(5), "haar")


class TestMultiLevel:
    @pytest.mark.parametrize("wavelet", ["haar", "db4"])
    def test_full_decomposition_roundtrip(self, wavelet):
        rng = np.random.default_rng(43)
        values = rng.normal(0, 1, 128)
        coeffs = wavedec(values, wavelet)
        assert np.allclose(waverec(coeffs, wavelet), values, atol=1e-9)

    def test_levels_bounded(self):
        coeffs = wavedec(np.zeros(64), "haar", levels=2)
        assert len(coeffs) == 3  # approx + 2 detail bands
        assert len(coeffs[0]) == 16

    def test_coefficient_count_preserved(self):
        coeffs = wavedec(np.zeros(64), "haar")
        assert sum(len(c) for c in coeffs) == 64

    def test_too_short_rejected(self):
        with pytest.raises(SequenceError):
            wavedec(np.zeros(1), "haar")

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=8, max_size=64))
    def test_roundtrip_property(self, values):
        n = len(values) - len(values) % 8  # multiple of 8 for 3 levels
        arr = np.asarray(values[:n] or values[:8])
        if len(arr) % 2:
            arr = arr[:-1]
        if len(arr) < 2:
            return
        coeffs = wavedec(arr, "haar")
        assert np.allclose(waverec(coeffs, "haar"), arr, atol=1e-8)


class TestCompression:
    def test_keep_all_is_lossless(self):
        rng = np.random.default_rng(44)
        seq = Sequence.from_values(rng.normal(0, 1, 64))
        comp = compress_wavelet(seq, keep_fraction=1.0)
        assert np.allclose(comp.reconstruct().values, seq.values, atol=1e-9)

    def test_compression_ratio_reported(self):
        rng = np.random.default_rng(45)
        seq = Sequence.from_values(rng.normal(0, 1, 128))
        comp = compress_wavelet(seq, keep_fraction=0.25)
        assert comp.compression_ratio >= 2.0

    def test_smooth_signal_compresses_well(self):
        t = np.arange(256, dtype=float)
        seq = Sequence(t, np.sin(2 * np.pi * t / 64))
        comp = compress_wavelet(seq, keep_fraction=0.15, wavelet="db4")
        err = np.abs(comp.reconstruct().values - seq.values).max()
        assert err < 0.15

    def test_db4_beats_haar_on_smooth_signal(self):
        t = np.arange(256, dtype=float)
        seq = Sequence(t, np.sin(2 * np.pi * t / 64))
        haar_err = np.abs(
            compress_wavelet(seq, keep_fraction=0.15, wavelet="haar").reconstruct().values
            - seq.values
        ).max()
        db4_err = np.abs(
            compress_wavelet(seq, keep_fraction=0.15, wavelet="db4").reconstruct().values
            - seq.values
        ).max()
        assert db4_err < haar_err

    def test_peaks_survive_compression(self):
        """The paper's requirement: compressed data keeps the features."""
        seq = goalpost_fever(noise=0.0, n_points=48)
        comp = compress_wavelet(seq, keep_fraction=0.3)
        recon = comp.reconstruct()
        assert len(raw_peak_indices(recon, prominence=2.0)) == 2

    def test_bad_fraction_rejected(self):
        seq = Sequence.from_values(np.zeros(16))
        with pytest.raises(SequenceError):
            compress_wavelet(seq, keep_fraction=0.0)
        with pytest.raises(SequenceError):
            compress_wavelet(seq, keep_fraction=1.5)
