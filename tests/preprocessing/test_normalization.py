"""Tests for normalization (paper Section 7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequence import Sequence
from repro.preprocessing import min_max_normalize, normalization_parameters, znormalize


class TestZNormalize:
    def test_mean_zero_var_one(self):
        rng = np.random.default_rng(31)
        seq = Sequence.from_values(rng.normal(40, 7, 500))
        out = znormalize(seq)
        assert out.mean() == pytest.approx(0.0, abs=1e-9)
        assert out.variance() == pytest.approx(1.0, abs=1e-9)

    def test_constant_maps_to_zero(self):
        out = znormalize(Sequence.from_values(np.full(10, 42.0)))
        assert np.allclose(out.values, 0.0)

    def test_eliminates_linear_transforms(self):
        """The paper's purpose: sequences that are scale/translations of
        each other normalize to the same sequence."""
        rng = np.random.default_rng(32)
        base = Sequence.from_values(rng.normal(0, 1, 100))
        transformed = Sequence.from_values(3.0 * base.values + 17.0)
        assert np.allclose(znormalize(base).values, znormalize(transformed).values)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=2, max_size=50),
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    def test_invariance_property(self, values, scale, shift):
        from hypothesis import assume

        base = Sequence.from_values(values)
        moved_values = [scale * v + shift for v in values]
        # Guard against float collapse: a variation tinier than the shift's
        # ulp vanishes in the transform, which is underflow, not a
        # normalization defect.  "Survives" means above znormalize's own
        # relative noise floor, not merely nonzero — the std of identical
        # floats is summation noise, not variation.
        assume(
            np.std(values) == 0.0
            or np.std(moved_values) > 1e-14 * np.abs(moved_values).max()
        )
        moved = Sequence.from_values(moved_values)
        assert np.allclose(znormalize(base).values, znormalize(moved).values, atol=1e-6)


class TestMinMaxNormalize:
    def test_range_mapped(self):
        seq = Sequence.from_values([2.0, 4.0, 6.0])
        out = min_max_normalize(seq)
        assert out.values.min() == 0.0
        assert out.values.max() == 1.0

    def test_custom_range(self):
        seq = Sequence.from_values([0.0, 10.0])
        out = min_max_normalize(seq, lo=-1.0, hi=1.0)
        assert list(out.values) == [-1.0, 1.0]

    def test_constant_maps_to_midpoint(self):
        out = min_max_normalize(Sequence.from_values(np.full(5, 3.0)), lo=0.0, hi=2.0)
        assert np.allclose(out.values, 1.0)


class TestNormalizationParameters:
    def test_roundtrip(self):
        rng = np.random.default_rng(33)
        seq = Sequence.from_values(rng.normal(12, 3, 200))
        mean, std = normalization_parameters(seq)
        normalized = znormalize(seq)
        restored = normalized.values * std + mean
        assert np.allclose(restored, seq.values)


class TestZNormalizeConstancyEdges:
    def test_numerically_constant_maps_to_zero(self):
        # std of identical floats is summation noise, not variation.
        out = znormalize(Sequence.from_values([0.1] * 24))
        assert np.allclose(out.values, 0.0)

    def test_tiny_signal_on_large_offset_survives(self):
        # A representable oscillation riding a huge offset is real data
        # and must normalize, not flatten.
        riding = 1e8 + 5e-7 * np.sin(np.linspace(0.0, 6.28, 200))
        out = znormalize(Sequence.from_values(riding))
        assert not np.allclose(out.values, 0.0)
        assert out.values.std() == pytest.approx(1.0, abs=1e-6)
