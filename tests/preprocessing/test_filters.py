"""Tests for the smoothing filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence
from repro.preprocessing import exponential_smoothing, median_filter, moving_average


@pytest.fixture
def spiky():
    values = np.zeros(21)
    values[10] = 100.0
    return Sequence.from_values(values)


class TestMovingAverage:
    def test_constant_unchanged(self):
        seq = Sequence.from_values(np.full(10, 3.0))
        out = moving_average(seq, 3)
        assert np.allclose(out.values, 3.0)

    def test_reduces_noise_variance(self):
        rng = np.random.default_rng(21)
        seq = Sequence.from_values(rng.normal(0, 1, 200))
        out = moving_average(seq, 7)
        assert out.variance() < seq.variance()

    def test_length_and_times_preserved(self, spiky):
        out = moving_average(spiky, 5)
        assert len(out) == len(spiky)
        assert np.array_equal(out.times, spiky.times)

    def test_window_one_is_identity(self, spiky):
        out = moving_average(spiky, 1)
        assert np.allclose(out.values, spiky.values)

    def test_bad_window_rejected(self, spiky):
        with pytest.raises(SequenceError):
            moving_average(spiky, 0)
        with pytest.raises(SequenceError):
            moving_average(spiky, 100)

    def test_mean_preserved_in_interior(self):
        rng = np.random.default_rng(22)
        seq = Sequence.from_values(rng.normal(5, 1, 100))
        out = moving_average(seq, 5)
        assert out.mean() == pytest.approx(seq.mean(), abs=0.1)


class TestMedianFilter:
    def test_removes_impulse_completely(self, spiky):
        out = median_filter(spiky, 5)
        assert out.values.max() == 0.0

    def test_moving_average_only_spreads_impulse(self, spiky):
        out = moving_average(spiky, 5)
        assert out.values.max() > 0.0  # contrast with the median filter

    def test_monotone_preserved(self):
        seq = Sequence.from_values(np.arange(20, dtype=float))
        out = median_filter(seq, 3)
        assert (np.diff(out.values) >= 0).all()

    def test_bad_window_rejected(self, spiky):
        with pytest.raises(SequenceError):
            median_filter(spiky, 0)


class TestExponentialSmoothing:
    def test_alpha_one_identity(self, spiky):
        out = exponential_smoothing(spiky, 1.0)
        assert np.allclose(out.values, spiky.values)

    def test_smooths_noise(self):
        rng = np.random.default_rng(23)
        seq = Sequence.from_values(rng.normal(0, 1, 300))
        out = exponential_smoothing(seq, 0.2)
        assert out.variance() < seq.variance()

    def test_first_value_anchored(self, spiky):
        out = exponential_smoothing(spiky, 0.5)
        assert out.values[0] == spiky.values[0]

    def test_bad_alpha_rejected(self, spiky):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(SequenceError):
                exponential_smoothing(spiky, alpha)
