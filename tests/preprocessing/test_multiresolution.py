"""Tests for the multiresolution pyramid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.core.features import count_peaks, raw_peak_indices
from repro.core.sequence import Sequence
from repro.preprocessing import MultiresolutionPyramid
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever, synthetic_ecg


class TestConstruction:
    def test_level_sizes_halve(self):
        seq = Sequence.from_values(np.zeros(64))
        pyramid = MultiresolutionPyramid.build(seq, depth=3)
        assert pyramid.sample_counts() == [64, 32, 16, 8]
        assert pyramid.depth == 3

    def test_depth_zero_is_base_only(self):
        seq = Sequence.from_values(np.zeros(8))
        pyramid = MultiresolutionPyramid.build(seq, depth=0)
        assert pyramid.sample_counts() == [8]

    def test_odd_length_rejected(self):
        seq = Sequence.from_values(np.zeros(9))
        with pytest.raises(SequenceError):
            MultiresolutionPyramid.build(seq, depth=1)

    def test_too_deep_rejected(self):
        seq = Sequence.from_values(np.zeros(4))
        with pytest.raises(SequenceError):
            MultiresolutionPyramid.build(seq, depth=5)

    def test_non_uniform_rejected(self):
        seq = Sequence([0.0, 1.0, 3.0, 4.0], [0.0, 1.0, 2.0, 3.0])
        with pytest.raises(SequenceError):
            MultiresolutionPyramid.build(seq, depth=1)

    def test_negative_depth_rejected(self):
        seq = Sequence.from_values(np.zeros(8))
        with pytest.raises(SequenceError):
            MultiresolutionPyramid.build(seq, depth=-1)

    def test_level_access_bounds(self):
        seq = Sequence.from_values(np.zeros(16))
        pyramid = MultiresolutionPyramid.build(seq, depth=2)
        with pytest.raises(SequenceError):
            pyramid.level(3)
        with pytest.raises(SequenceError):
            pyramid.level(-1)


class TestAmplitudeFidelity:
    def test_constant_preserved_at_every_level(self):
        seq = Sequence.from_values(np.full(64, 7.0))
        pyramid = MultiresolutionPyramid.build(seq, depth=3, wavelet="haar")
        for level in pyramid:
            assert np.allclose(level.values, 7.0, atol=1e-9)

    def test_coarse_level_tracks_local_means(self):
        values = np.concatenate([np.zeros(32), np.full(32, 10.0)])
        pyramid = MultiresolutionPyramid.build(Sequence.from_values(values), depth=2, wavelet="haar")
        coarse = pyramid.level(2)
        assert coarse.values[0] == pytest.approx(0.0, abs=1e-9)
        assert coarse.values[-1] == pytest.approx(10.0, abs=1e-9)

    def test_time_span_preserved(self):
        seq = Sequence.from_values(np.zeros(64), start=100.0, step=2.0)
        pyramid = MultiresolutionPyramid.build(seq, depth=2)
        coarse = pyramid.level(2)
        assert coarse.start_time >= seq.start_time
        assert coarse.end_time <= seq.end_time + 8.0


class TestFeaturesFromCompressedData:
    """The paper's goal: extract features from the compressed data."""

    def test_fever_peaks_survive_one_level(self):
        seq = goalpost_fever(noise=0.1, n_points=48)
        pyramid = MultiresolutionPyramid.build(seq, depth=1, wavelet="db4")
        coarse = pyramid.level(1)
        rep = InterpolationBreaker(0.5).represent(coarse, curve_kind="regression")
        assert count_peaks(rep, theta=0.05) == 2
        assert pyramid.compression_at(1) == 2.0

    def test_ecg_r_peaks_survive_two_levels(self):
        seq = synthetic_ecg(rr_intervals=[136, 176], n_points=512, noise=0.5, seed=3)
        pyramid = MultiresolutionPyramid.build(seq, depth=2, wavelet="haar")
        coarse = pyramid.level(2)  # 128 samples instead of 512
        # Prominence 40 keeps the R spikes (local averages ~45+) and
        # drops the T waves (~22) at this scale.
        peaks = raw_peak_indices(coarse, prominence=40.0)
        assert len(peaks) == 3
        # Peak spacing scales with the grid: ~136/4 and ~176/4 samples,
        # but times are preserved, so time distances stay ~136 and ~176.
        times = [coarse.times[p] for p in peaks]
        deltas = np.diff(times)
        assert abs(deltas[0] - 136) <= 8
        assert abs(deltas[1] - 176) <= 8

    def test_feature_extraction_cost_shrinks(self):
        seq = synthetic_ecg(rr_intervals=[136, 176], n_points=512, noise=0.5, seed=4)
        pyramid = MultiresolutionPyramid.build(seq, depth=2, wavelet="haar")
        breaker = InterpolationBreaker(10.0)
        full_segments = len(breaker.break_indices(pyramid.level(0)))
        coarse_segments = len(breaker.break_indices(pyramid.level(2)))
        assert coarse_segments <= full_segments
