"""Tests for the inverted-file index (paper Figure 10)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.index.inverted import InvertedFileIndex, Posting


class TestBasics:
    def test_add_and_query(self):
        index = InvertedFileIndex()
        index.add(135.0, sequence_id=1)
        index.add(175.0, sequence_id=1)
        index.add(135.0, sequence_id=2)
        assert index.sequences_near(135.0, 0.0) == [1, 2]
        assert index.sequences_near(175.0, 0.0) == [1]
        assert index.sequences_near(300.0, 10.0) == []

    def test_paper_query_shape(self):
        """The Section 5.2 example: RR = 135 ± 5 finds the right ECG."""
        index = InvertedFileIndex()
        index.add_all([150.0, 150.0, 150.0], sequence_id=0)  # steady rhythm
        index.add_all([115.0, 135.0, 120.0], sequence_id=1)  # paper's bottom ECG
        assert index.sequences_near(135.0, 5.0) == [1]

    def test_postings_sorted_by_value(self):
        index = InvertedFileIndex(bucket_width=10.0)
        for v in [19.0, 12.0, 15.0, 11.0]:
            index.add(v, sequence_id=int(v))
        postings = list(index.postings_in_range(10.0, 20.0))
        values = [p.value for p in postings]
        assert values == sorted(values)

    def test_positions_recorded(self):
        index = InvertedFileIndex()
        index.add_all([100.0, 110.0, 120.0], sequence_id=5)
        postings = list(index.postings_in_range(0.0, 200.0))
        assert [(p.sequence_id, p.position) for p in postings] == [(5, 0), (5, 1), (5, 2)]

    def test_len_counts_postings(self):
        index = InvertedFileIndex()
        index.add_all([1.0, 2.0, 3.0], sequence_id=0)
        assert len(index) == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(IndexError_):
            InvertedFileIndex(bucket_width=0.0)
        index = InvertedFileIndex()
        with pytest.raises(IndexError_):
            index.sequences_near(5.0, -1.0)

    def test_empty_range(self):
        index = InvertedFileIndex()
        index.add(5.0, 0)
        assert list(index.postings_in_range(10.0, 1.0)) == []


class TestBucketing:
    def test_bucket_boundaries_inclusive(self):
        index = InvertedFileIndex(bucket_width=10.0)
        index.add(10.0, 1)
        index.add(19.999, 2)
        index.add(20.0, 3)
        assert index.sequences_in_range(10.0, 19.999) == [1, 2]
        assert index.sequences_in_range(10.0, 20.0) == [1, 2, 3]

    def test_negative_values_bucket_correctly(self):
        index = InvertedFileIndex(bucket_width=1.0)
        index.add(-1.5, 1)
        index.add(-0.5, 2)
        assert index.sequences_in_range(-2.0, -1.0) == [1]
        assert index.sequences_in_range(-1.0, 0.0) == [2]

    def test_bucket_count_grows_with_spread(self):
        index = InvertedFileIndex(bucket_width=1.0)
        for v in range(0, 100, 10):
            index.add(float(v), v)
        assert index.bucket_count() == 10


class TestInvariantsAndModel:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=150,
        ),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    def test_range_query_matches_brute_force(self, entries, target, delta):
        index = InvertedFileIndex(bucket_width=7.0)
        for value, sid in entries:
            index.add(value, sid)
        index.check_invariants()
        expected = sorted({sid for value, sid in entries if abs(value - target) <= delta})
        assert index.sequences_near(target, delta) == expected

    def test_check_invariants_on_large_build(self):
        rng = np.random.default_rng(51)
        index = InvertedFileIndex(bucket_width=2.5)
        for __ in range(1000):
            index.add(float(rng.uniform(0, 300)), int(rng.integers(0, 40)))
        index.check_invariants()

    def test_posting_ordering(self):
        assert Posting(1.0, 2) < Posting(2.0, 1)
        assert Posting(1.0, 1) < Posting(1.0, 2)
