"""Tests for the inverted-file index (paper Figure 10)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.index.inverted import InvertedFileIndex, Posting


class TestBasics:
    def test_add_and_query(self):
        index = InvertedFileIndex()
        index.add(135.0, sequence_id=1)
        index.add(175.0, sequence_id=1)
        index.add(135.0, sequence_id=2)
        assert index.sequences_near(135.0, 0.0) == [1, 2]
        assert index.sequences_near(175.0, 0.0) == [1]
        assert index.sequences_near(300.0, 10.0) == []

    def test_paper_query_shape(self):
        """The Section 5.2 example: RR = 135 ± 5 finds the right ECG."""
        index = InvertedFileIndex()
        index.add_all(0, [150.0, 150.0, 150.0])  # steady rhythm
        index.add_all(1, [115.0, 135.0, 120.0])  # paper's bottom ECG
        assert index.sequences_near(135.0, 5.0) == [1]

    def test_postings_sorted_by_value(self):
        index = InvertedFileIndex(bucket_width=10.0)
        for v in [19.0, 12.0, 15.0, 11.0]:
            index.add(v, sequence_id=int(v))
        postings = list(index.postings_in_range(10.0, 20.0))
        values = [p.value for p in postings]
        assert values == sorted(values)

    def test_positions_recorded(self):
        index = InvertedFileIndex()
        index.add_all(5, [100.0, 110.0, 120.0])
        postings = list(index.postings_in_range(0.0, 200.0))
        assert [(p.sequence_id, p.position) for p in postings] == [(5, 0), (5, 1), (5, 2)]

    def test_len_counts_postings(self):
        index = InvertedFileIndex()
        index.add_all(0, [1.0, 2.0, 3.0])
        assert len(index) == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(IndexError_):
            InvertedFileIndex(bucket_width=0.0)
        index = InvertedFileIndex()
        with pytest.raises(IndexError_):
            index.sequences_near(5.0, -1.0)

    def test_empty_range(self):
        index = InvertedFileIndex()
        index.add(5.0, 0)
        assert list(index.postings_in_range(10.0, 1.0)) == []


class TestBucketing:
    def test_bucket_boundaries_inclusive(self):
        index = InvertedFileIndex(bucket_width=10.0)
        index.add(10.0, 1)
        index.add(19.999, 2)
        index.add(20.0, 3)
        assert index.sequences_in_range(10.0, 19.999) == [1, 2]
        assert index.sequences_in_range(10.0, 20.0) == [1, 2, 3]

    def test_negative_values_bucket_correctly(self):
        index = InvertedFileIndex(bucket_width=1.0)
        index.add(-1.5, 1)
        index.add(-0.5, 2)
        assert index.sequences_in_range(-2.0, -1.0) == [1]
        assert index.sequences_in_range(-1.0, 0.0) == [2]

    def test_bucket_count_grows_with_spread(self):
        index = InvertedFileIndex(bucket_width=1.0)
        for v in range(0, 100, 10):
            index.add(float(v), v)
        assert index.bucket_count() == 10


class TestInvariantsAndModel:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=150,
        ),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    def test_range_query_matches_brute_force(self, entries, target, delta):
        index = InvertedFileIndex(bucket_width=7.0)
        for value, sid in entries:
            index.add(value, sid)
        index.check_invariants()
        expected = sorted({sid for value, sid in entries if abs(value - target) <= delta})
        assert index.sequences_near(target, delta) == expected

    def test_check_invariants_on_large_build(self):
        rng = np.random.default_rng(51)
        index = InvertedFileIndex(bucket_width=2.5)
        for __ in range(1000):
            index.add(float(rng.uniform(0, 300)), int(rng.integers(0, 40)))
        index.check_invariants()

    def test_posting_ordering(self):
        assert Posting(1.0, 2) < Posting(2.0, 1)
        assert Posting(1.0, 1) < Posting(1.0, 2)


class TestIngestSignatureUnification:
    """add_all/add_array take (sequence_id, values); the pre-unification
    reversed order (shimmed with a FutureWarning for two releases) is
    now rejected at the API boundary with a pointed error."""

    def test_add_array_sequence_id_first(self):
        index = InvertedFileIndex()
        index.add_array(3, np.array([10.0, 20.0]))
        assert index.sequences_near(10.0, 0.0) == [3]
        assert len(index) == 2

    def test_legacy_order_rejected_with_swap_hint(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="swap the argument order"):
            index.add_array(np.array([10.0, 20.0]), 3)
        with pytest.raises(IndexError_, match="swap the argument order"):
            index.add_all([5.0, 6.0], 7)
        assert len(index) == 0  # nothing inserted by the failed calls

    def test_legacy_keyword_style_rejected(self):
        # The pre-unification documented style — values positional,
        # sequence_id by keyword — now collides on the sequence_id
        # parameter like any other Python signature misuse.
        index = InvertedFileIndex()
        with pytest.raises(TypeError):
            index.add_all([150.0, 150.0], sequence_id=0)
        with pytest.raises(TypeError):
            index.add_array(np.array([115.0, 135.0]), sequence_id=1)

    def test_keyword_forms_accepted(self):
        index = InvertedFileIndex()
        index.add_all(sequence_id=2, values=[9.0])
        index.add_array(3, values=np.array([11.0]))
        assert index.sequences_near(9.0, 0.0) == [2]
        assert index.sequences_near(11.0, 0.0) == [3]

    def test_malformed_argument_combinations_fail_clearly(self):
        index = InvertedFileIndex()
        with pytest.raises(TypeError):
            index.add_array(1, np.array([1.0]), sequence_id=1)
        with pytest.raises(TypeError):
            index.add_array(sequence_id=1)
        with pytest.raises(TypeError):
            index.add_all([1.0])

    def test_non_integer_sequence_id_fails_clearly(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="sequence_id must be an integer"):
            index.add_array("oops", np.array([1.0]))
        with pytest.raises(IndexError_, match="sequence_id"):
            index.add(5.0, sequence_id=2.5)
        with pytest.raises(IndexError_, match="sequence_id"):
            index.add_all(None, [1.0])

    def test_swapped_add_scalar_fails_clearly(self):
        # add() keeps the postings-file order (value, sequence_id); an
        # array in the value slot must fail at the boundary, not in the
        # B-tree.
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="value must be a real number"):
            index.add(np.array([1.0, 2.0]), 3)
        with pytest.raises(IndexError_, match="value"):
            index.add(None, 3)

    def test_multidimensional_values_rejected(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="one-dimensional"):
            index.add_array(1, np.zeros((2, 2)))

    def test_scalar_values_fail_clearly_on_both_entry_points(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="values must be iterable"):
            index.add_all(3, 5.0)
        with pytest.raises(IndexError_, match="values must be iterable"):
            index.add_array(3, 5.0)

    def test_numpy_integer_ids_accepted(self):
        index = InvertedFileIndex()
        index.add_array(np.int64(4), np.array([1.5]))
        assert index.sequences_near(1.5, 0.0) == [4]

    def test_empty_values_are_a_no_op(self):
        index = InvertedFileIndex()
        index.add_array(0, np.array([]))
        assert len(index) == 0


class TestNonFiniteValuesRejected:
    def test_add_rejects_nan_and_inf(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="finite"):
            index.add(float("nan"), 1)
        with pytest.raises(IndexError_, match="finite"):
            index.add(float("inf"), 1)

    def test_add_array_rejects_nan_and_inf(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="finite"):
            index.add_array(1, np.array([1.0, np.nan]))
        with pytest.raises(IndexError_, match="finite"):
            index.add_array(1, np.array([-np.inf]))
        assert len(index) == 0  # nothing partially inserted
        index.check_invariants()


class TestAddAllAtomicity:
    def test_bad_value_mid_list_inserts_nothing(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_, match="finite"):
            index.add_all(1, [5.0, float("nan"), 7.0])
        assert len(index) == 0
        with pytest.raises(IndexError_, match="real number"):
            index.add_all(1, [5.0, "oops"])
        assert len(index) == 0
        index.check_invariants()
