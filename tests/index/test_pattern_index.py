"""Tests for the slope-sign pattern index."""

from __future__ import annotations

import pytest

from repro.core.errors import IndexError_
from repro.index.pattern_index import PatternIndex
from repro.index.trie import Occurrence
from repro.segmentation import InterpolationBreaker
from repro.workloads import k_peak_sequence


@pytest.fixture
def index_with_fevers():
    """Index three sequences: 1, 2 and 3 peaks (collapsed view)."""
    index = PatternIndex(theta=0.05, collapse_runs=True)
    breaker = InterpolationBreaker(0.5)
    shapes = {
        0: k_peak_sequence([12.0], noise=0.0),
        1: k_peak_sequence([6.0, 18.0], noise=0.0),
        2: k_peak_sequence([4.0, 12.0, 20.0], noise=0.0),
    }
    for sid, seq in shapes.items():
        index.add(sid, breaker.represent(seq, curve_kind="regression"))
    return index


class TestBuilding:
    def test_add_and_contains(self, index_with_fevers):
        assert len(index_with_fevers) == 3
        assert 0 in index_with_fevers
        assert 99 not in index_with_fevers

    def test_symbols_visible(self, index_with_fevers):
        symbols = index_with_fevers.symbols_of(1)
        assert symbols.count("+") == 2

    def test_negative_theta_rejected(self):
        with pytest.raises(IndexError_):
            PatternIndex(theta=-0.1)


class TestQueries:
    def test_match_full_two_peaks(self, index_with_fevers):
        pattern = "(0|-)* + (0|-)^+ + (0|-)*"
        assert index_with_fevers.match_full(pattern) == [1]

    def test_match_full_one_peak(self, index_with_fevers):
        pattern = "(0|-)* + (0|-)*"
        assert index_with_fevers.match_full(pattern) == [0]

    def test_match_full_at_least_one_peak(self, index_with_fevers):
        pattern = "(0|-)* (+ (0|-)^+)^+ (0|-)* | (0|-)* (+ (0|-)^+)* + (0|-)*"
        assert index_with_fevers.match_full(pattern) == [0, 1, 2]

    def test_find_exact_substring(self, index_with_fevers):
        hits = index_with_fevers.find_exact("+-")
        assert all(isinstance(h, Occurrence) for h in hits)
        assert {h.sequence_id for h in hits} == {0, 1, 2}

    def test_search_returns_first_points(self, index_with_fevers):
        hits = index_with_fevers.search("\\+ (0|-)^+ \\+")
        # Only the 2- and 3-peak sequences contain rise-fall-rise.
        assert {h.sequence_id for h in hits} == {1, 2}

    def test_positional_index_uncollapsed(self):
        index = PatternIndex(theta=0.05, collapse_runs=False)
        breaker = InterpolationBreaker(0.5)
        rep = breaker.represent(k_peak_sequence([6.0, 18.0], noise=0.0), curve_kind="regression")
        index.add(7, rep)
        # Uncollapsed string length equals the segment count.
        assert len(index.symbols_of(7)) == len(rep)
