"""Tests for the positional suffix trie."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.index.trie import Occurrence, SymbolTrie


def brute_force_find(strings: dict[int, str], needle: str) -> list[Occurrence]:
    hits = []
    for sid, s in strings.items():
        start = 0
        while True:
            pos = s.find(needle, start)
            if pos < 0:
                break
            hits.append(Occurrence(sid, pos))
            start = pos + 1
    return sorted(hits)


class TestBasics:
    def test_single_string(self):
        trie = SymbolTrie()
        trie.add(0, "+-+-")
        assert trie.find("+-") == [Occurrence(0, 0), Occurrence(0, 2)]
        assert trie.find("-+") == [Occurrence(0, 1)]
        assert trie.find("++") == []

    def test_multiple_strings(self):
        trie = SymbolTrie()
        trie.add(0, "+-0")
        trie.add(1, "0+-")
        assert trie.find("+-") == [Occurrence(0, 0), Occurrence(1, 1)]

    def test_duplicate_id_rejected(self):
        trie = SymbolTrie()
        trie.add(0, "+")
        with pytest.raises(IndexError_):
            trie.add(0, "-")

    def test_symbols_of(self):
        trie = SymbolTrie()
        trie.add(3, "+0-")
        assert trie.symbols_of(3) == "+0-"
        with pytest.raises(IndexError_):
            trie.symbols_of(99)

    def test_contains_and_len(self):
        trie = SymbolTrie()
        trie.add(0, "+")
        trie.add(1, "-")
        assert 0 in trie and 1 in trie and 2 not in trie
        assert len(trie) == 2

    def test_bad_depth_rejected(self):
        with pytest.raises(IndexError_):
            SymbolTrie(max_depth=0)

    def test_empty_needle_matches_every_position(self):
        trie = SymbolTrie()
        trie.add(0, "+-")
        assert len(trie.find("")) == 2


class TestDepthLimit:
    def test_long_needle_verified_against_strings(self):
        trie = SymbolTrie(max_depth=3)
        trie.add(0, "+-+-+-+-")
        trie.add(1, "+-+0+-+-")
        needle = "+-+-+"  # longer than max_depth
        assert trie.find(needle) == brute_force_find({0: "+-+-+-+-", 1: "+-+0+-+-"}, needle)

    def test_depth_one_trie_still_correct(self):
        strings = {0: "+0-+", 1: "000+"}
        trie = SymbolTrie(max_depth=1)
        for sid, s in strings.items():
            trie.add(sid, s)
        for needle in ("+", "0", "0-", "00", "+0-"):
            assert trie.find(needle) == brute_force_find(strings, needle)


class TestModelBased:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.text(alphabet="+-0", min_size=1, max_size=25), min_size=1, max_size=8),
        st.text(alphabet="+-0", min_size=1, max_size=6),
        st.integers(min_value=1, max_value=10),
    )
    def test_find_matches_brute_force(self, strings, needle, depth):
        trie = SymbolTrie(max_depth=depth)
        table = {}
        for sid, s in enumerate(strings):
            trie.add(sid, s)
            table[sid] = s
        assert trie.find(needle) == brute_force_find(table, needle)

    def test_node_count_bounded(self):
        trie = SymbolTrie(max_depth=4)
        trie.add(0, "+-0" * 20)
        # Bounded depth over a 3-symbol alphabet: at most sum_{d<=4} 3^d nodes.
        assert trie.node_count() <= 1 + 3 + 9 + 27 + 81
