"""Tests for the B-tree, including model-based property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.index.btree import BTree


class TestBasics:
    def test_empty(self):
        tree = BTree()
        assert len(tree) == 0
        assert 5 not in tree
        assert tree.get(5) is None
        assert tree.get(5, "fallback") == "fallback"

    def test_insert_and_get(self):
        tree = BTree()
        tree.insert(3, "c")
        tree.insert(1, "a")
        tree.insert(2, "b")
        assert len(tree) == 3
        assert tree.get(1) == "a"
        assert tree.get(2) == "b"
        assert tree.get(3) == "c"

    def test_overwrite_keeps_size(self):
        tree = BTree()
        tree.insert(1, "a")
        tree.insert(1, "z")
        assert len(tree) == 1
        assert tree.get(1) == "z"

    def test_setdefault(self):
        tree = BTree()
        bucket = tree.setdefault(7, list)
        bucket.append("x")
        assert tree.setdefault(7, list) == ["x"]

    def test_min_degree_validation(self):
        with pytest.raises(IndexError_):
            BTree(min_degree=1)

    def test_items_sorted(self):
        tree = BTree(min_degree=2)
        for key in [9, 3, 7, 1, 5, 8, 2, 6, 4, 0]:
            tree.insert(key, key * 10)
        assert [k for k, __ in tree.items()] == list(range(10))
        assert [v for __, v in tree.items()] == [k * 10 for k in range(10)]


class TestSplitsAndHeight:
    def test_many_inserts_stay_balanced(self):
        tree = BTree(min_degree=2)
        for key in range(200):
            tree.insert(key, key)
        tree.check_invariants()
        assert tree.height() <= 8  # log-ish for t=2

    def test_descending_inserts(self):
        tree = BTree(min_degree=3)
        for key in reversed(range(150)):
            tree.insert(key, key)
        tree.check_invariants()
        assert [k for k, __ in tree.items()] == list(range(150))


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BTree(min_degree=2)
        for key in range(0, 100, 3):  # 0, 3, 6, ..., 99
            tree.insert(key, f"v{key}")
        return tree

    def test_inner_range(self, tree):
        assert [k for k, __ in tree.range(10, 20)] == [12, 15, 18]

    def test_inclusive_bounds(self, tree):
        assert [k for k, __ in tree.range(12, 18)] == [12, 15, 18]

    def test_full_range(self, tree):
        assert len(list(tree.range(-100, 1000))) == len(tree)

    def test_empty_range(self, tree):
        assert list(tree.range(13, 14)) == []
        assert list(tree.range(200, 300)) == []

    def test_range_matches_filter(self, tree):
        everything = dict(tree.items())
        lo, hi = 21, 60
        expected = sorted(k for k in everything if lo <= k <= hi)
        assert [k for k, __ in tree.range(lo, hi)] == expected


class TestDelete:
    def test_delete_leaf_key(self):
        tree = BTree(min_degree=2)
        for key in range(20):
            tree.insert(key, key)
        tree.delete(7)
        assert 7 not in tree
        assert len(tree) == 19
        tree.check_invariants()

    def test_delete_all(self):
        tree = BTree(min_degree=2)
        keys = list(range(50))
        for key in keys:
            tree.insert(key, key)
        for key in keys:
            tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_missing_rejected(self):
        tree = BTree()
        tree.insert(1, "a")
        with pytest.raises(IndexError_):
            tree.delete(99)

    def test_delete_interleaved_with_insert(self):
        tree = BTree(min_degree=2)
        for key in range(30):
            tree.insert(key, key)
        for key in range(0, 30, 2):
            tree.delete(key)
        for key in range(100, 110):
            tree.insert(key, key)
        tree.check_invariants()
        expected = sorted(set(range(1, 30, 2)) | set(range(100, 110)))
        assert [k for k, __ in tree.items()] == expected


class TestModelBased:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), st.integers(min_value=0, max_value=50)),
            max_size=120,
        ),
        st.integers(min_value=2, max_value=4),
    )
    def test_against_dict_model(self, operations, degree):
        tree = BTree(min_degree=degree)
        model: dict[int, int] = {}
        for op, key in operations:
            if op == "insert":
                tree.insert(key, key * 2)
                model[key] = key * 2
            elif key in model:
                tree.delete(key)
                del model[key]
        tree.check_invariants()
        assert len(tree) == len(model)
        assert dict(tree.items()) == model
        for key in range(51):
            assert tree.get(key) == model.get(key)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), unique=True, max_size=80))
    def test_float_keys_sorted(self, keys):
        tree = BTree(min_degree=3)
        for key in keys:
            tree.insert(key, None)
        assert [k for k, __ in tree.items()] == sorted(keys)
