"""Bulk index ingestion: add_many / add_block equivalence with loops.

The batched entry points must leave every index in *exactly* the state
the sequential per-sequence calls produce: same trie nodes, same
occurrence sets, same posting buckets — and removal must still prune
dead branches after a bulk build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import IndexError_
from repro.index import InvertedFileIndex, PatternIndex, SymbolTrie


def _random_strings(n: int, seed: int, duplicates: bool = True) -> "list[tuple[int, str]]":
    rng = np.random.default_rng(seed)
    alphabet = "+-0"
    items = []
    for i in range(n):
        length = int(rng.integers(0, 30))
        items.append((i, "".join(alphabet[j] for j in rng.integers(0, 3, length))))
    if duplicates:
        # Re-issue earlier strings under fresh ids, like a corpus whose
        # behavioural strings repeat across sequences.
        items += [(n + i, items[i % 7][1]) for i in range(n // 2)]
    return items


def _trie_state(trie: SymbolTrie) -> dict:
    state = {}

    def walk(node, path):
        state[path] = sorted(node.occurrences)
        for symbol, child in node.children.items():
            walk(child, path + symbol)

    walk(trie._root, "")
    return state


class TestTrieAddMany:
    @pytest.mark.parametrize("max_depth", [3, 12])
    def test_equivalent_to_sequential_add(self, max_depth):
        items = _random_strings(40, seed=max_depth)
        sequential = SymbolTrie(max_depth=max_depth)
        for sequence_id, symbols in items:
            sequential.add(sequence_id, symbols)
        bulk = SymbolTrie(max_depth=max_depth)
        bulk.add_many(items)
        assert bulk.node_count() == sequential.node_count()
        assert len(bulk) == len(sequential)
        assert _trie_state(bulk) == _trie_state(sequential)
        for sequence_id, symbols in items:
            assert bulk.symbols_of(sequence_id) == symbols

    def test_find_agrees_after_bulk_add(self):
        items = _random_strings(30, seed=5)
        sequential = SymbolTrie()
        bulk = SymbolTrie()
        for sequence_id, symbols in items:
            sequential.add(sequence_id, symbols)
        bulk.add_many(items)
        for probe in ("+", "-", "0", "+-", "+-+", "0--", "+0+0-", "+" * 15):
            assert bulk.find(probe) == sequential.find(probe)

    def test_remove_prunes_after_bulk_add(self):
        items = _random_strings(25, seed=9)
        bulk = SymbolTrie()
        bulk.add_many(items)
        for sequence_id, __ in items:
            bulk.remove(sequence_id)
        assert len(bulk) == 0
        assert bulk.node_count() == 1  # only the root survives

    def test_remove_many_equals_sequential_removes(self):
        items = _random_strings(30, seed=2)
        a = SymbolTrie()
        b = SymbolTrie()
        a.add_many(items)
        b.add_many(items)
        victims = [sequence_id for sequence_id, __ in items[::3]]
        for sequence_id in victims:
            a.remove(sequence_id)
        b.remove_many(victims)
        assert _trie_state(a) == _trie_state(b)
        assert a.node_count() == b.node_count()

    def test_duplicate_id_in_batch_inserts_nothing(self):
        trie = SymbolTrie()
        with pytest.raises(IndexError_):
            trie.add_many([(1, "+-"), (1, "0")])
        assert len(trie) == 0
        assert trie.node_count() == 1

    def test_existing_id_rejected_before_any_insert(self):
        trie = SymbolTrie()
        trie.add(7, "+0-")
        before = _trie_state(trie)
        with pytest.raises(IndexError_):
            trie.add_many([(8, "+"), (7, "-")])
        assert _trie_state(trie) == before

    def test_remove_many_unknown_id_removes_nothing(self):
        trie = SymbolTrie()
        trie.add_many([(1, "+-"), (2, "0+")])
        before = _trie_state(trie)
        with pytest.raises(IndexError_):
            trie.remove_many([1, 99])
        assert _trie_state(trie) == before

    def test_empty_strings_and_empty_batch(self):
        trie = SymbolTrie()
        trie.add_many([])
        trie.add_many([(1, ""), (2, ""), (3, "+")])
        assert len(trie) == 3
        assert trie.symbols_of(1) == ""
        trie.remove_many([1, 2, 3])
        assert trie.node_count() == 1


class TestPatternIndexAddSymbolsMany:
    def test_matches_sequential_adds(self):
        items = _random_strings(25, seed=3)
        sequential = PatternIndex(theta=0.1)
        bulk = PatternIndex(theta=0.1)
        for sequence_id, symbols in items:
            sequential.add_symbols(sequence_id, symbols)
        bulk.add_symbols_many(items)
        assert len(bulk) == len(sequential)
        for sequence_id, symbols in items:
            assert bulk.symbols_of(sequence_id) == symbols
        assert bulk.find_exact("+-") == sequential.find_exact("+-")
        assert bulk.search("+0*-") == sequential.search("+0*-")

    def test_remove_many(self):
        items = _random_strings(20, seed=4)
        index = PatternIndex()
        index.add_symbols_many(items)
        index.remove_many([sequence_id for sequence_id, __ in items])
        assert len(index) == 0


class TestInvertedAddBlock:
    def test_equivalent_to_add_array_loop(self):
        rng = np.random.default_rng(11)
        payloads = [
            (i, rng.uniform(0.0, 40.0, int(rng.integers(0, 9)))) for i in range(60)
        ]
        sequential = InvertedFileIndex(bucket_width=1.5)
        block = InvertedFileIndex(bucket_width=1.5)
        for sequence_id, values in payloads:
            sequential.add_array(sequence_id, values)
        block.add_block(payloads)
        block.check_invariants()
        assert len(block) == len(sequential)
        assert block.bucket_count() == sequential.bucket_count()
        for key, bucket in sequential._btree.items():
            other = dict(block._btree.items())[key]
            assert bucket.postings == other.postings
        assert block.sequences_near(20.0, 3.0) == sequential.sequences_near(20.0, 3.0)

    def test_block_accepts_generators_and_lists(self):
        index = InvertedFileIndex()
        index.add_block([(0, (v for v in [1.0, 2.0])), (1, [3.5])])
        assert len(index) == 3

    def test_bad_payload_inserts_nothing(self):
        index = InvertedFileIndex()
        with pytest.raises(IndexError_):
            index.add_block([(0, [1.0, 2.0]), (1, [np.nan])])
        assert len(index) == 0
        with pytest.raises(IndexError_):
            index.add_block([(0, [1.0]), ("not-an-id", [2.0])])
        assert len(index) == 0

    def test_empty_block_and_empty_columns(self):
        index = InvertedFileIndex()
        index.add_block([])
        index.add_block([(0, []), (1, np.empty(0))])
        assert len(index) == 0
        assert index.bucket_count() == 0

    def test_remove_sequences_batch(self):
        rng = np.random.default_rng(13)
        payloads = [(i, rng.uniform(0.0, 10.0, 4)) for i in range(20)]
        a = InvertedFileIndex()
        b = InvertedFileIndex()
        a.add_block(payloads)
        b.add_block(payloads)
        victims = list(range(0, 20, 2))
        for sequence_id in victims:
            a.remove_sequence(sequence_id)
        removed = b.remove_sequences(victims)
        assert removed == 10 * 4
        assert len(a) == len(b)
        a.check_invariants()
        b.check_invariants()
        assert a.sequences_in_range(0.0, 10.0) == b.sequences_in_range(0.0, 10.0)
