"""Suffix-only index maintenance: trie updates and posting tail swaps.

The oracle in both cases is full remove-and-re-add: after any chain of
updates, every query the structure answers must be identical to a
freshly built twin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import IndexError_
from repro.index.inverted import InvertedFileIndex
from repro.index.pattern_index import PatternIndex
from repro.index.trie import SymbolTrie

ALPHABET = "+-0"


def _random_symbols(rng, lo=0, hi=40):
    return "".join(rng.choice(list(ALPHABET)) for _ in range(rng.integers(lo, hi)))


def _all_substrings(strings, max_len):
    subs = {""}
    for s in strings:
        for i in range(len(s)):
            for j in range(i + 1, min(i + max_len + 2, len(s)) + 1):
                subs.add(s[i:j])
    return sorted(subs)


def _assert_trie_equivalent(trie: SymbolTrie, strings: "dict[int, str]", max_depth: int):
    oracle = SymbolTrie(max_depth=max_depth)
    for sequence_id in sorted(strings):
        oracle.add(sequence_id, strings[sequence_id])
    for sub in _all_substrings(strings.values(), max_depth):
        assert trie.find(sub) == oracle.find(sub), f"substring {sub!r} diverged"
    for sequence_id, symbols in strings.items():
        assert trie.symbols_of(sequence_id) == symbols


class TestTrieUpdate:
    def test_append_style_update_matches_rebuild(self):
        rng = np.random.default_rng(0)
        trie = SymbolTrie(max_depth=4)
        strings = {}
        for sequence_id in range(8):
            strings[sequence_id] = _random_symbols(rng, 5, 25)
            trie.add(sequence_id, strings[sequence_id])
        # Extend tails (the append shape) several times over.
        for _ in range(5):
            for sequence_id in list(strings):
                # An append may also rewrite the last pre-existing
                # symbol (the re-broken trailing segment).
                base = strings[sequence_id]
                if base and rng.random() < 0.5:
                    base = base[:-1] + rng.choice(list(ALPHABET))
                strings[sequence_id] = base + _random_symbols(rng, 1, 6)
                trie.update(sequence_id, strings[sequence_id])
        _assert_trie_equivalent(trie, strings, max_depth=4)

    def test_arbitrary_rewrites_match_rebuild(self):
        # update() is documented for tail changes but must stay exact
        # for any rewrite (shrinking strings included).
        rng = np.random.default_rng(1)
        trie = SymbolTrie(max_depth=3)
        strings = {}
        for sequence_id in range(6):
            strings[sequence_id] = _random_symbols(rng, 0, 15)
            trie.add(sequence_id, strings[sequence_id])
        for _ in range(30):
            sequence_id = int(rng.integers(0, 6))
            strings[sequence_id] = _random_symbols(rng, 0, 15)
            trie.update(sequence_id, strings[sequence_id])
        _assert_trie_equivalent(trie, strings, max_depth=3)

    def test_stale_occurrences_compact_via_rebuild(self):
        rng = np.random.default_rng(2)
        trie = SymbolTrie(max_depth=4)
        trie.add(0, "+-0+-0+-0+")
        seen_positive = False
        for _ in range(300):
            trie.update(0, _random_symbols(rng, 8, 20))
            seen_positive = seen_positive or trie.stale_occurrences > 0
        assert seen_positive
        # The rebuild threshold keeps garbage bounded by live volume.
        assert trie.stale_occurrences <= trie._total_occurrences

    def test_update_unknown_or_bad_arguments(self):
        trie = SymbolTrie()
        with pytest.raises(IndexError_):
            trie.update(3, "+-")
        trie.add(3, "+-")
        with pytest.raises(IndexError_):
            trie.update(3, None)
        trie.update(3, "+-")  # no-op on identical string
        assert trie.symbols_of(3) == "+-"

    def test_update_then_remove_leaves_no_trace(self):
        trie = SymbolTrie(max_depth=4)
        trie.add(1, "++--")
        trie.add(2, "0+0+")
        trie.update(1, "++-00")
        trie.remove(1)
        _assert_trie_equivalent(trie, {2: "0+0+"}, max_depth=4)

    def test_pattern_index_update_entry_point(self):
        index = PatternIndex(trie_depth=4)
        index.add_symbols(0, "++--")
        index.update_symbols(0, "++-0+")
        assert index.symbols_of(0) == "++-0+"
        assert [o.position for o in index.find_exact("0+")] == [3]
        assert index.match_full("\\+^+ - 0 \\+") == [0]


class TestInvertedReplaceTail:
    def _oracle(self, columns, bucket_width=1.0):
        index = InvertedFileIndex(bucket_width=bucket_width)
        for sequence_id, values in columns.items():
            index.add_array(sequence_id, values)
        return index

    def _assert_same(self, index, oracle):
        index.check_invariants()
        assert len(index) == len(oracle)
        assert index.bucket_count() == oracle.bucket_count()
        for lo, hi in [(-100, 100), (0, 5), (2.5, 7.25), (10, 9)]:
            assert list(index.postings_in_range(lo, hi)) == list(
                oracle.postings_in_range(lo, hi)
            )

    def test_tail_swap_matches_rebuild(self):
        rng = np.random.default_rng(3)
        columns = {
            sequence_id: rng.uniform(0, 12, rng.integers(0, 20))
            for sequence_id in range(6)
        }
        index = self._oracle(columns)
        for _ in range(25):
            sequence_id = int(rng.integers(0, 6))
            old = columns[sequence_id]
            keep = int(rng.integers(0, len(old) + 1))
            new = np.concatenate([old[:keep], rng.uniform(0, 12, rng.integers(0, 8))])
            index.replace_tail(sequence_id, old, new)
            columns[sequence_id] = new
        self._assert_same(index, self._oracle(columns))

    def test_common_prefix_postings_untouched(self):
        index = InvertedFileIndex(bucket_width=1.0)
        old = np.array([1.5, 2.5, 3.5])
        index.add_array(7, old)
        new = np.array([1.5, 2.5, 4.5, 5.5])
        removed = index.replace_tail(7, old, new)
        assert removed == 1  # only the changed tail value left
        self._assert_same(index, self._oracle({7: new}))

    def test_identical_columns_are_a_noop(self):
        index = InvertedFileIndex()
        values = np.array([1.0, 2.0])
        index.add_array(1, values)
        assert index.replace_tail(1, values, values) == 0
        assert len(index) == 2
