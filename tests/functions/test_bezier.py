"""Tests for cubic Bézier curves and Schneider fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.bezier import CubicBezier, fit_bezier


def straight_controls():
    return np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])


class TestCubicBezier:
    def test_needs_four_points(self):
        with pytest.raises(FittingError):
            CubicBezier(np.zeros((3, 2)))

    def test_endpoints_interpolated(self):
        curve = CubicBezier(straight_controls())
        assert np.allclose(curve.point_at(0.0), [0.0, 0.0])
        assert np.allclose(curve.point_at(1.0), [3.0, 3.0])

    def test_straight_controls_give_line(self):
        curve = CubicBezier(straight_controls())
        for u in np.linspace(0, 1, 9):
            x, y = curve.point_at(float(u))
            assert y == pytest.approx(x, abs=1e-9)

    def test_time_series_evaluation(self):
        curve = CubicBezier(straight_controls())
        assert curve(1.5) == pytest.approx(1.5, abs=1e-6)
        out = curve(np.array([0.5, 2.5]))
        assert np.allclose(out, [0.5, 2.5], atol=1e-6)

    def test_evaluation_clamps_outside(self):
        curve = CubicBezier(straight_controls())
        assert curve(-1.0) == pytest.approx(0.0)
        assert curve(10.0) == pytest.approx(3.0)

    def test_derivative_of_line_is_one(self):
        curve = CubicBezier(straight_controls())
        assert curve.derivative_at(1.5) == pytest.approx(1.0, abs=1e-6)

    def test_parameters_roundtrip(self):
        curve = CubicBezier(straight_controls())
        assert len(curve.parameters()) == 8

    def test_tangent_at_endpoints(self):
        curve = CubicBezier(straight_controls())
        tan = curve.tangent_at(0.0)
        assert tan[0] == pytest.approx(3.0)  # 3 * (P1 - P0)
        assert tan[1] == pytest.approx(3.0)


class TestFitBezier:
    def test_two_points_chord(self):
        seq = Sequence([0.0, 4.0], [0.0, 8.0])
        curve = fit_bezier(seq)
        assert curve(2.0) == pytest.approx(4.0, abs=1e-6)

    def test_single_point_rejected(self):
        with pytest.raises(FittingError):
            fit_bezier(Sequence([0.0], [1.0]))

    def test_fits_smooth_arc_tightly(self):
        t = np.linspace(0, np.pi, 30)
        seq = Sequence(t, np.sin(t))
        curve = fit_bezier(seq)
        assert curve.max_deviation(seq) < 0.05

    def test_fits_cubic_exactly_shaped_data(self):
        t = np.linspace(0, 1, 25)
        seq = Sequence(t, t**3)
        curve = fit_bezier(seq)
        assert curve.max_deviation(seq) < 0.02

    def test_endpoint_anchoring(self):
        t = np.linspace(0, 2, 20)
        seq = Sequence(t, np.cos(t))
        curve = fit_bezier(seq)
        assert float(curve.control_points[0, 0]) == pytest.approx(0.0)
        assert float(curve.control_points[3, 0]) == pytest.approx(2.0)

    def test_reparameterization_improves_or_keeps(self):
        t = np.linspace(0, np.pi, 40)
        seq = Sequence(t, np.sin(t) + 0.1 * np.sin(3 * t))
        base = fit_bezier(seq, reparameterize_iterations=0)
        refined = fit_bezier(seq, reparameterize_iterations=4)
        assert refined.max_deviation(seq) <= base.max_deviation(seq) + 1e-9
