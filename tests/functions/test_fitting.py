"""Tests for the curve-fitter registry."""

from __future__ import annotations

import pytest

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.fitting import available_kinds, get_fitter, register_fitter
from repro.functions.linear import LinearFunction


@pytest.fixture
def seq():
    return Sequence.from_values([1.0, 2.0, 4.0, 8.0, 16.0])


class TestRegistry:
    def test_builtin_kinds_resolve(self, seq):
        for kind in ("interpolation", "regression", "bezier", "sinusoid"):
            assert callable(get_fitter(kind))

    def test_poly_kind_parsing(self, seq):
        fitter = get_fitter("poly:2")
        fitted = fitter(seq)
        assert fitted.family == "poly"

    def test_poly_bad_degree_rejected(self):
        with pytest.raises(FittingError):
            get_fitter("poly:x")
        with pytest.raises(FittingError):
            get_fitter("poly:-1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FittingError):
            get_fitter("splines")

    def test_available_kinds_mentions_poly(self):
        kinds = available_kinds()
        assert "interpolation" in kinds
        assert "poly:<degree>" in kinds

    def test_register_custom(self, seq):
        def constant_fitter(sequence):
            return LinearFunction(0.0, float(sequence.values.mean()))

        register_fitter("test-constant", constant_fitter)
        try:
            fitted = get_fitter("test-constant")(seq)
            assert fitted.slope == 0.0
        finally:
            # Clean up the global registry for other tests.
            from repro.functions import fitting

            del fitting._REGISTRY["test-constant"]

    def test_register_duplicate_rejected(self):
        with pytest.raises(FittingError):
            register_fitter("regression", lambda s: None)

    def test_register_poly_prefix_rejected(self):
        with pytest.raises(FittingError):
            register_fitter("poly:9", lambda s: None)
