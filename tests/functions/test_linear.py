"""Tests for linear functions and their fitters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.linear import LinearFunction, fit_interpolation_line, fit_regression_line


class TestLinearFunction:
    def test_evaluation(self):
        f = LinearFunction(2.0, 1.0)
        assert f(3.0) == 7.0
        assert np.allclose(f(np.array([0.0, 1.0])), [1.0, 3.0])

    def test_derivative_constant(self):
        f = LinearFunction(2.0, 1.0)
        assert f.derivative_at(100.0) == 2.0
        assert np.allclose(f.derivative_at(np.array([0.0, 1.0])), [2.0, 2.0])

    def test_parameters_and_key(self):
        f = LinearFunction(2.0, 1.0)
        assert f.parameters() == (2.0, 1.0)
        assert f.lexicographic_key() == (2.0, 1.0)
        assert f.parameter_count == 2

    def test_ordering_by_slope_first(self):
        assert LinearFunction(1.0, 100.0) < LinearFunction(2.0, 0.0)
        assert LinearFunction(1.0, 0.0) < LinearFunction(1.0, 1.0)

    def test_equality_and_hash(self):
        assert LinearFunction(1.0, 2.0) == LinearFunction(1.0, 2.0)
        assert hash(LinearFunction(1.0, 2.0)) == hash(LinearFunction(1.0, 2.0))
        assert LinearFunction(1.0, 2.0) != LinearFunction(1.0, 3.0)

    def test_shifted_identity(self):
        f = LinearFunction(2.0, 1.0)
        g = f.shifted(3.0)
        for t in (0.0, 1.5, -2.0):
            assert g(t) == pytest.approx(f(t + 3.0))

    def test_format_equation(self):
        assert LinearFunction(0.94, 97.66).format_equation() == "0.94x+97.7"
        assert "-" in LinearFunction(1.0, -5.0).format_equation()

    def test_mean_slope_equals_slope(self):
        f = LinearFunction(3.0, 0.0)
        assert f.mean_slope(0.0, 10.0) == 3.0
        assert f.mean_slope(5.0, 5.0) == 3.0  # degenerate span -> derivative


class TestInterpolationFit:
    def test_passes_through_endpoints(self):
        seq = Sequence([0.0, 1.0, 2.0], [5.0, 9.0, 7.0])
        f = fit_interpolation_line(seq)
        assert f(0.0) == pytest.approx(5.0)
        assert f(2.0) == pytest.approx(7.0)

    def test_single_point_rejected(self):
        with pytest.raises(FittingError):
            fit_interpolation_line(Sequence([0.0], [1.0]))

    def test_extremum_is_farthest(self):
        # The property the breaker relies on: for a vee, the apex is the
        # point of maximum deviation from the endpoint chord.
        values = np.concatenate([np.linspace(0, 10, 11), np.linspace(9, 0, 10)])
        seq = Sequence.from_values(values)
        f = fit_interpolation_line(seq)
        assert f.argmax_deviation(seq) == 10


class TestRegressionFit:
    def test_exact_on_linear_data(self):
        seq = Sequence([0.0, 1.0, 2.0, 3.0], [1.0, 3.0, 5.0, 7.0])
        f = fit_regression_line(seq)
        assert f.slope == pytest.approx(2.0)
        assert f.intercept == pytest.approx(1.0)

    def test_least_squares_optimality(self):
        rng = np.random.default_rng(3)
        seq = Sequence.from_values(rng.normal(0, 1, 50))
        f = fit_regression_line(seq)
        base_sse = float(np.sum(f.residuals(seq) ** 2))
        for ds, di in [(0.01, 0.0), (-0.01, 0.0), (0.0, 0.01), (0.0, -0.01)]:
            perturbed = LinearFunction(f.slope + ds, f.intercept + di)
            assert float(np.sum(perturbed.residuals(seq) ** 2)) >= base_sse

    def test_single_point_constant(self):
        f = fit_regression_line(Sequence([5.0], [42.0]))
        assert f.slope == 0.0
        assert f(99.0) == 42.0

    def test_residual_mean_zero(self):
        rng = np.random.default_rng(4)
        seq = Sequence.from_values(rng.normal(5, 2, 30))
        f = fit_regression_line(seq)
        assert float(f.residuals(seq).mean()) == pytest.approx(0.0, abs=1e-9)

    def test_rmse_leq_max_deviation(self):
        rng = np.random.default_rng(5)
        seq = Sequence.from_values(rng.normal(0, 1, 30))
        f = fit_regression_line(seq)
        assert f.rmse(seq) <= f.max_deviation(seq) + 1e-12
