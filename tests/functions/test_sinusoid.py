"""Tests for the sinusoid family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.sinusoid import Sinusoid, fit_sinusoid


class TestSinusoid:
    def test_evaluation(self):
        s = Sinusoid(2.0, 0.25, 0.0, 1.0)  # period 4
        assert s(0.0) == pytest.approx(1.0)
        assert s(1.0) == pytest.approx(3.0)  # sin(pi/2) = 1 -> 2*1 + 1

    def test_derivative(self):
        s = Sinusoid(1.0, 1.0, 0.0, 0.0)
        # derivative at 0: A * 2*pi*f * cos(0) = 2*pi
        assert s.derivative_at(0.0) == pytest.approx(2.0 * np.pi)

    def test_phase_normalized(self):
        s = Sinusoid(1.0, 1.0, 7.0)
        assert 0.0 <= s.phase < 2.0 * np.pi

    def test_negative_frequency_rejected(self):
        with pytest.raises(FittingError):
            Sinusoid(1.0, -1.0, 0.0)

    def test_period(self):
        assert Sinusoid(1.0, 0.5, 0.0).period() == 2.0
        assert Sinusoid(1.0, 0.0, 0.0).period() == float("inf")

    def test_lexicographic_amplitude_first(self):
        a = Sinusoid(1.0, 100.0, 0.0)
        b = Sinusoid(2.0, 1.0, 0.0)
        assert a < b


class TestFitSinusoid:
    def test_recovers_known_signal(self):
        t = np.arange(200, dtype=float)
        true = Sinusoid(3.0, 0.05, 1.2, 10.0)
        seq = Sequence(t, true.sample(t))
        fitted = fit_sinusoid(seq)
        assert fitted.max_deviation(seq) < 0.05
        assert fitted.frequency == pytest.approx(0.05, rel=0.05)
        assert fitted.amplitude == pytest.approx(3.0, rel=0.05)
        assert fitted.offset == pytest.approx(10.0, abs=0.1)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(8)
        t = np.arange(256, dtype=float)
        clean = 2.0 * np.sin(2 * np.pi * t / 32 + 0.5)
        seq = Sequence(t, clean + rng.normal(0, 0.1, len(t)))
        fitted = fit_sinusoid(seq)
        assert fitted.frequency == pytest.approx(1.0 / 32.0, rel=0.05)

    def test_constant_degenerates(self):
        seq = Sequence.from_values(np.full(16, 7.0))
        fitted = fit_sinusoid(seq)
        assert fitted.amplitude == 0.0
        assert fitted(3.0) == pytest.approx(7.0)

    def test_too_short_rejected(self):
        with pytest.raises(FittingError):
            fit_sinusoid(Sequence.from_values([1.0, 2.0, 3.0]))

    def test_non_uniform_input_handled(self):
        rng = np.random.default_rng(9)
        t = np.sort(rng.uniform(0, 100, 120))
        t = np.unique(t)
        seq = Sequence(t, np.sin(2 * np.pi * t / 25.0))
        fitted = fit_sinusoid(seq)
        assert fitted.rmse(seq) < 0.2
