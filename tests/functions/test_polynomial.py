"""Tests for the polynomial family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.polynomial import PolynomialFunction, fit_polynomial


class TestPolynomialFunction:
    def test_evaluation_highest_first(self):
        p = PolynomialFunction((1.0, -2.0, 3.0))  # t^2 - 2t + 3
        assert p(0.0) == 3.0
        assert p(2.0) == 3.0

    def test_leading_zeros_normalized(self):
        p = PolynomialFunction((0.0, 0.0, 1.0, 5.0))
        assert p.degree == 1
        assert p.coefficients == (1.0, 5.0)

    def test_constant_keeps_single_zero(self):
        p = PolynomialFunction((0.0,))
        assert p.degree == 0

    def test_empty_rejected(self):
        with pytest.raises(FittingError):
            PolynomialFunction(())

    def test_derivative(self):
        p = PolynomialFunction((1.0, -2.0, 3.0))
        assert p.derivative_at(1.0) == pytest.approx(0.0)  # 2t - 2 at t=1
        d = p.derivative()
        assert d.coefficients == (2.0, -2.0)

    def test_derivative_of_constant_is_zero(self):
        assert PolynomialFunction((5.0,)).derivative().coefficients == (0.0,)

    def test_real_roots(self):
        p = PolynomialFunction((1.0, 0.0, -4.0))  # t^2 - 4
        assert p.real_roots() == pytest.approx([-2.0, 2.0])

    def test_complex_roots_filtered(self):
        p = PolynomialFunction((1.0, 0.0, 4.0))  # t^2 + 4: no real roots
        assert p.real_roots() == []

    def test_extrema_in_window(self):
        # t^3 - 3t has critical points at ±1.
        p = PolynomialFunction((1.0, 0.0, -3.0, 0.0))
        assert p.extrema_in(-2.0, 2.0) == pytest.approx([-1.0, 1.0])
        assert p.extrema_in(0.0, 2.0) == pytest.approx([1.0])

    def test_lexicographic_degree_first(self):
        quadratic = PolynomialFunction((1.0, 0.0, 0.0))
        line = PolynomialFunction((100.0, 100.0))
        assert line < quadratic  # degree dominates coefficients


class TestFitPolynomial:
    def test_exact_quadratic_recovery(self):
        t = np.linspace(0, 5, 20)
        seq = Sequence(t, 2.0 * t**2 - 3.0 * t + 1.0)
        p = fit_polynomial(seq, 2)
        assert p.max_deviation(seq) < 1e-8
        assert p.coefficients == pytest.approx((2.0, -3.0, 1.0), abs=1e-8)

    def test_degree_capped_by_points(self):
        seq = Sequence([0.0, 1.0], [1.0, 2.0])
        p = fit_polynomial(seq, 5)
        assert p.degree <= 1

    def test_degree_zero_is_mean(self):
        seq = Sequence.from_values([1.0, 2.0, 3.0])
        p = fit_polynomial(seq, 0)
        assert p(0.0) == pytest.approx(2.0)

    def test_negative_degree_rejected(self):
        with pytest.raises(FittingError):
            fit_polynomial(Sequence.from_values([1.0, 2.0]), -1)

    def test_conditioning_far_from_origin(self):
        # Fitting far from t=0 must not blow up numerically.
        t = np.linspace(10_000.0, 10_010.0, 50)
        seq = Sequence(t, 0.5 * (t - 10_005.0) ** 2)
        p = fit_polynomial(seq, 2)
        assert p.max_deviation(seq) < 1e-4

    def test_cubic_on_cubic_data(self):
        t = np.linspace(-2, 2, 30)
        seq = Sequence(t, t**3 - t)
        p = fit_polynomial(seq, 3)
        assert p.max_deviation(seq) < 1e-8
