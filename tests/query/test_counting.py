"""Counting/position queries: succinct vs scan parity, language, cache.

The acceptance contract for the succinct symbol backend: ``CountQuery``
and ``MotifQuery`` answers are byte-identical between the succinct
rank/select path, the uncompressed scan path and the legacy per-
sequence grader — for every motif × shard count × symbol view, across
interleaved insert/append/delete churn — and the language forms,
result cache, process backend and storage telemetry all compose with
the new query family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.query.database import SequenceDatabase
from repro.query.language import parse_query
from repro.query.queries import CountQuery, MotifQuery
from repro.workloads import clickstream_corpus

MOTIFS = ("+", "+-", "+-+", "-0", "++--", "0-", "+0+")
SHARDS = (None, 2, 7)


def make_pair(n_shards: "int | None", n_sequences: int = 36, seed: int = 23):
    """(succinct, uncompressed) databases over the same corpus."""
    corpus = clickstream_corpus(n_sequences=n_sequences, seed=seed)
    pair = []
    for backend in ("succinct", "uncompressed"):
        db = SequenceDatabase(n_shards=n_shards, symbol_backend=backend)
        db.insert_all(corpus)
        pair.append(db)
    return pair


def count_ids(db: SequenceDatabase, motif: str, collapse: bool) -> "list[int]":
    return sorted(
        m.sequence_id for m in db.query(CountQuery(motif, collapse_runs=collapse))
    )


def position_map(db: SequenceDatabase, motif: str, collapse: bool):
    matches = db.query(MotifQuery(motif, collapse_runs=collapse))
    assert [m.sequence_id for m in matches] == sorted(m.sequence_id for m in matches)
    return {m.sequence_id: m.positions for m in matches}


class TestParity:
    @pytest.mark.parametrize("n_shards", SHARDS)
    def test_count_and_positions_match_scan_and_legacy(self, n_shards):
        succinct, uncompressed = make_pair(n_shards)
        try:
            for motif in MOTIFS:
                for collapse in (True, False):
                    expected = count_ids(uncompressed, motif, collapse)
                    assert count_ids(succinct, motif, collapse) == expected
                    legacy = sorted(
                        m.sequence_id
                        for m in succinct.query_legacy(
                            CountQuery(motif, collapse_runs=collapse)
                        )
                    )
                    assert legacy == expected
                    assert position_map(succinct, motif, collapse) == position_map(
                        uncompressed, motif, collapse
                    )
        finally:
            succinct.close()
            uncompressed.close()

    @pytest.mark.parametrize("n_shards", SHARDS)
    def test_parity_survives_interleaved_mutations(self, n_shards):
        succinct, uncompressed = make_pair(n_shards, n_sequences=30)
        fresh = iter(clickstream_corpus(n_sequences=20, seed=77))
        rng = np.random.default_rng(5)
        try:
            for round_number in range(3):
                ids = succinct.ids()
                victims = ids[:: 5 + round_number]
                grow = [s for s in ids[2::7] if s not in victims]
                tails = {
                    s: np.cumsum(rng.normal(0, 2.0, size=9)) + 10.0 for s in grow
                }
                arrivals = [next(fresh) for _ in range(4)]
                for db in (succinct, uncompressed):
                    db.delete_many(victims)
                    for sequence_id in grow:
                        if db.has_raw(sequence_id):
                            db.append(sequence_id, tails[sequence_id])
                    for sequence in arrivals:
                        db.insert(sequence)
                for motif in ("+-+", "-0", "+"):
                    for collapse in (True, False):
                        assert count_ids(succinct, motif, collapse) == count_ids(
                            uncompressed, motif, collapse
                        ), (round_number, motif, collapse, n_shards)
                        assert position_map(succinct, motif, collapse) == position_map(
                            uncompressed, motif, collapse
                        ), (round_number, motif, collapse, n_shards)
                succinct.store.check_consistency()
        finally:
            succinct.close()
            uncompressed.close()

    def test_absent_motif_and_collapsed_runs(self):
        with SequenceDatabase(symbol_backend="succinct") as db:
            db.insert_all(clickstream_corpus(n_sequences=10))
            # Runs collapse in the behavioural view: "++" can never occur.
            assert db.count_matching("++") == 0
            assert db.motif_positions("++") == {}
            # But the positional view keeps the raw run.
            assert db.count_matching("++", collapse_runs=False) > 0

    def test_positions_are_ascending_occurrence_offsets(self):
        with SequenceDatabase(symbol_backend="succinct") as db:
            db.insert_all(clickstream_corpus(n_sequences=20))
            for sequence_id, positions in db.motif_positions(
                "+-", collapse_runs=False
            ).items():
                assert positions == tuple(sorted(positions))
                text = db.store.symbols_of(sequence_id)
                for offset in positions:
                    assert text[offset : offset + 2] == "+-"


class TestValidation:
    @pytest.mark.parametrize("motif", ["", "+x", "ab", "+ -", "±"])
    def test_bad_motifs_rejected(self, motif):
        with pytest.raises(QueryError):
            CountQuery(motif)
        with pytest.raises(QueryError):
            MotifQuery(motif)

    def test_unknown_symbol_backend_rejected(self):
        with pytest.raises(QueryError, match="symbol backend"):
            SequenceDatabase(symbol_backend="lz77")

    def test_queries_are_immutable_fingerprinted(self):
        query = CountQuery("+-+")
        assert query.fingerprint() == ("CountQuery", "+-+", True)
        assert MotifQuery("+-+", collapse_runs=False).fingerprint() == (
            "MotifQuery",
            "+-+",
            False,
        )
        with pytest.raises(AttributeError):
            query.motif = "--"


class TestLanguage:
    def test_count_matching_forms(self):
        query = parse_query("COUNT MATCHING '+-+'")
        assert isinstance(query, CountQuery)
        assert query.motif == "+-+" and query.collapse_runs
        positional = parse_query('count matching "+-+" positional')
        assert isinstance(positional, CountQuery)
        assert not positional.collapse_runs

    def test_positions_of_forms(self):
        query = parse_query("POSITIONS OF '-0'")
        assert isinstance(query, MotifQuery)
        assert query.motif == "-0" and query.collapse_runs
        positional = parse_query("POSITIONS OF '-0' POSITIONAL")
        assert not positional.collapse_runs

    @pytest.mark.parametrize(
        "statement",
        [
            "COUNT '+-+'",
            "COUNT MATCHING +-+",
            "COUNT MATCHING '+-+",
            "POSITIONS '+-+'",
            "POSITIONS OF",
            "COUNT MATCHING 'ab'",
        ],
    )
    def test_malformed_statements(self, statement):
        with pytest.raises(QueryError):
            parse_query(statement)

    def test_language_round_trip_through_database(self):
        with SequenceDatabase(symbol_backend="succinct") as db:
            db.insert_all(clickstream_corpus(n_sequences=15))
            count = len(db.query(parse_query("COUNT MATCHING '+-'")))
            assert count == db.count_matching("+-")
            by_query = {
                m.sequence_id: m.positions
                for m in db.query(parse_query("POSITIONS OF '+-' POSITIONAL"))
            }
            assert by_query == db.motif_positions("+-", collapse_runs=False)


class TestCacheAndExplain:
    def test_cache_hit_then_delta_revalidation(self):
        with SequenceDatabase(n_shards=2, symbol_backend="succinct") as db:
            db.insert_all(clickstream_corpus(n_sequences=24))
            query = CountQuery("+-+")
            first = db.query(query)
            hits_before = db.cache_stats()["hits"]
            second = db.query(query)
            assert db.cache_stats()["hits"] == hits_before + 1
            assert [m.sequence_id for m in first] == [m.sequence_id for m in second]
            # Mutate one sequence: the cached answer is delta-patched
            # and still matches a cold legacy grade.
            db.delete(db.ids()[0])
            third = sorted(m.sequence_id for m in db.query(query))
            legacy = sorted(m.sequence_id for m in db.query_legacy(query))
            assert third == legacy

    def test_motif_positions_cache_roundtrip(self):
        with SequenceDatabase(symbol_backend="succinct") as db:
            db.insert_all(clickstream_corpus(n_sequences=18))
            query = MotifQuery("-0")
            first = db.query(query)
            second = db.query(query)
            assert first == second  # positions participate in equality
            db.delete(db.ids()[1])
            third = db.query(query)
            cold = db.query_legacy(query)
            assert [(m.sequence_id, m.positions) for m in third] == [
                (m.sequence_id, m.positions) for m in cold
            ]

    def test_explain_names_the_stages(self):
        with SequenceDatabase(symbol_backend="succinct") as db:
            db.insert_all(clickstream_corpus(n_sequences=8))
            assert "count-matching" in db.explain(CountQuery("+-"))
            assert "motif-collect" in db.explain(MotifQuery("+-"))


class TestProcessBackend:
    def test_workers_attach_succinct_views_zero_copy(self):
        corpus = clickstream_corpus(n_sequences=24, seed=31)
        with SequenceDatabase(
            n_shards=4, backend="process", symbol_backend="succinct"
        ) as db, SequenceDatabase(n_shards=4) as reference:
            db.insert_all(corpus)
            reference.insert_all(corpus)
            for motif in ("+-+", "-0"):
                assert count_ids(db, motif, True) == count_ids(reference, motif, True)
                assert position_map(db, motif, False) == position_map(
                    reference, motif, False
                )
            # Mutations regenerate the manifests workers attach to.
            victims = db.ids()[:5]
            db.delete_many(victims)
            reference.delete_many(victims)
            assert count_ids(db, "+-", True) == count_ids(reference, "+-", True)


class TestTelemetry:
    def test_storage_report_surfaces_succinct_stats(self):
        with SequenceDatabase(n_shards=2, symbol_backend="succinct") as db:
            db.insert_all(clickstream_corpus(n_sequences=16))
            db.count_matching("+-")
            report = db.storage_report()["succinct"]
            assert report["backend"] == "succinct"
            assert report["built"]
            assert report["builds"] >= 1
            assert report["symbols"] > 0
            assert 0 < report["bits_per_symbol"] < 8
            assert report["rank_blocks"] > 0
            assert report["queries"] > 0

    def test_uncompressed_backend_reports_unbuilt(self):
        with SequenceDatabase() as db:
            db.insert_all(clickstream_corpus(n_sequences=6))
            db.count_matching("+-")
            report = db.storage_report()["succinct"]
            assert report["backend"] == "uncompressed"
            assert not report["built"]
