"""Tests for multiple representation variants per sequence."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.query import SequenceDatabase
from repro.segmentation import BezierBreaker, InterpolationBreaker
from repro.workloads import goalpost_fever


@pytest.fixture
def db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert(goalpost_fever(noise=0.1, name="fever"))
    return db


class TestVariants:
    def test_add_and_get(self, db):
        coarse = db.add_variant(0, "coarse", InterpolationBreaker(2.0))
        assert db.variant_of(0, "coarse") is coarse
        assert len(coarse) <= len(db.representation_of(0))

    def test_variant_pays_archive_read(self, db):
        reads_before = db.archive.log.reads
        db.add_variant(0, "coarse", InterpolationBreaker(2.0))
        assert db.archive.log.reads == reads_before + 1

    def test_bezier_variant(self, db):
        rep = db.add_variant(0, "bezier", BezierBreaker(1.0), curve_kind="bezier")
        assert all(seg.function.family in ("bezier", "linear") for seg in rep)

    def test_duplicate_variant_rejected(self, db):
        db.add_variant(0, "coarse", InterpolationBreaker(2.0))
        with pytest.raises(StorageError):
            db.add_variant(0, "coarse", InterpolationBreaker(2.0))

    def test_variant_listing(self, db):
        db.add_variant(0, "coarse", InterpolationBreaker(2.0))
        assert db.catalog.variants_of(0) == ["coarse", "default"]

    def test_variant_stored_locally(self, db):
        db.add_variant(0, "coarse", InterpolationBreaker(2.0))
        restored = db.local_store.retrieve(0, tag="coarse")
        assert len(restored) == len(db.variant_of(0, "coarse"))

    def test_missing_variant_rejected(self, db):
        with pytest.raises(StorageError):
            db.variant_of(0, "nonexistent")

    def test_variant_respects_normalization(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.1), normalize=True)
        db.insert(goalpost_fever(noise=0.0, name="fever"))
        variant = db.add_variant(0, "coarse", InterpolationBreaker(0.5))
        # Normalized amplitudes: segment values live near 0, not near 98.
        assert abs(variant[0].start_point[1]) < 5.0
