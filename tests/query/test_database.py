"""Tests for the SequenceDatabase end-to-end flows."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.query import IntervalQuery, PatternQuery, PeakCountQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus, goalpost_fever


@pytest.fixture
def fever_db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=6, n_one_peak=4, n_three_peak=4))
    return db


class TestIngest:
    def test_ids_sequential(self, fever_db):
        assert fever_db.ids() == list(range(14))
        assert len(fever_db) == 14

    def test_names_preserved(self, fever_db):
        assert fever_db.name_of(0).startswith("fever-2p")

    def test_representation_available(self, fever_db):
        rep = fever_db.representation_of(0)
        assert len(rep) > 1
        assert rep.curve_kind == "regression"

    def test_unknown_id_rejected(self, fever_db):
        with pytest.raises(QueryError):
            fever_db.representation_of(999)
        with pytest.raises(QueryError):
            fever_db.name_of(-1)

    def test_raw_retrievable_with_latency_accounting(self, fever_db):
        before = fever_db.archive.log.simulated_seconds
        raw = fever_db.raw_sequence(0)
        assert len(raw) == 49
        assert fever_db.archive.log.simulated_seconds > before

    def test_keep_raw_false(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), keep_raw=False)
        db.insert(goalpost_fever())
        with pytest.raises(QueryError):
            db.raw_sequence(0)

    def test_catalog_has_default_variant(self, fever_db):
        assert fever_db.catalog.variants_of(0) == ["default"]


class TestQueryFlows:
    def test_pattern_query_precision_recall(self, fever_db):
        matches = fever_db.query(PatternQuery("(0|-)* + (0|-)^+ + (0|-)*"))
        names = {m.name for m in matches}
        expected = {fever_db.name_of(i) for i in fever_db.ids() if "2p" in fever_db.name_of(i)}
        assert names == expected

    def test_peak_count_query_agrees_with_pattern(self, fever_db):
        by_pattern = {m.sequence_id for m in fever_db.query(PatternQuery("(0|-)* + (0|-)^+ + (0|-)*"))}
        by_count = {m.sequence_id for m in fever_db.query(PeakCountQuery(2))}
        assert by_pattern == by_count

    def test_peak_count_tolerance_widens(self, fever_db):
        strict = fever_db.query(PeakCountQuery(2))
        loose = fever_db.query(PeakCountQuery(2, count_tolerance=1))
        assert len(loose) > len(strict)
        # Exact members sort first.
        assert all(m.is_exact for m in loose[: len(strict)])

    def test_exclude_approximate(self, fever_db):
        loose = fever_db.query(PeakCountQuery(2, count_tolerance=1), include_approximate=False)
        strict = fever_db.query(PeakCountQuery(2))
        assert {m.sequence_id for m in loose} == {m.sequence_id for m in strict}


class TestRRIndexPath:
    @pytest.fixture
    def ecg_db(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
        db.insert_all(ecg_corpus(n_sequences=30, seed=3))
        return db

    def test_index_matches_scan(self, ecg_db):
        for target, delta in [(120.0, 5.0), (150.0, 10.0), (180.0, 2.0), (110.0, 0.0)]:
            index_hits = {m.sequence_id for m in ecg_db.query(IntervalQuery(target, delta))}
            scan_hits = set(ecg_db.scan_rr(target, delta))
            assert index_hits == scan_hits, (target, delta)

    def test_interval_query_grades(self, ecg_db):
        matches = ecg_db.query(IntervalQuery(150.0, 8.0))
        for m in matches:
            deviation = m.deviation_in("rr_interval")
            assert deviation is not None
            assert deviation.within

    def test_rr_index_invariants(self, ecg_db):
        ecg_db.rr_index.check_invariants()


class TestStorageReport:
    def test_report_fields(self, fever_db):
        report = fever_db.storage_report()
        assert report["sequences"] == 14
        assert report["total_points"] == 14 * 49
        assert report["raw_bytes"] > 0
        assert report["representation_bytes"] > 0
        assert report["paper_convention_compression"] > 1.0

    def test_byte_compression_on_long_sequences(self):
        """The paper's compression claim concerns 500-point ECGs; short
        noisy fever logs legitimately may not compress at the byte level."""
        db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
        db.insert_all(ecg_corpus(n_sequences=10, seed=5))
        report = db.storage_report()
        assert report["byte_compression"] > 1.3
        assert report["paper_convention_compression"] > 3.0


class TestConfigMutability:
    def test_theta_is_fixed_at_construction(self):
        from repro.query import SequenceDatabase
        from repro.segmentation import InterpolationBreaker
        import pytest

        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), theta=0.5)
        assert db.theta == 0.5
        # Every index and symbol column is classified with this value at
        # ingest; mutation would silently desynchronize them.
        with pytest.raises(AttributeError):
            db.theta = 0.0

    def test_planner_explain_shim_removed(self):
        # The deprecated QueryPlanner.explain shim (two releases of
        # FutureWarning) is gone; SequenceDatabase.explain is the API.
        from repro.query import PeakCountQuery, SequenceDatabase
        from repro.segmentation import InterpolationBreaker

        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        assert not hasattr(db.planner, "explain")
        assert "vectorized-grade" in db.explain(PeakCountQuery(2))
