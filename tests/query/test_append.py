"""Streaming append: byte-identical to re-inserting from scratch.

The acceptance contract of ``SequenceDatabase.append``: a database that
ingested prefixes and then appended the tails must be indistinguishable
— representations, symbol strings, peaks, postings, columnar rows, and
the answer to every query type — from a database that ingested the full
sequences in one go, for online and offline breakers alike and for
every shard count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.core.sequence import Sequence
from repro.query import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.segmentation import InterpolationBreaker
from repro.segmentation.online import IncrementalRegressionBreaker, SlidingWindowBreaker
from repro.storage.serialization import encode_representation

SHARD_COUNTS = [None, 2, 7]


def _corpus(seed=21, count=14):
    rng = np.random.default_rng(seed)
    sequences = []
    for i in range(count):
        n = int(rng.integers(60, 160))
        t = np.arange(n, dtype=float)
        values = (
            4.0 * np.sin(2 * np.pi * t / rng.uniform(15, 45))
            + rng.normal(0.0, 0.15, n)
        )
        sequences.append(Sequence(t, values, name=f"stream-{i}"))
    return sequences


def _queries(corpus):
    return [
        PatternQuery("(0|-|\\+)* \\+ (0|-|\\+)*"),
        PatternQuery("(0|-)* \\+ (0|-|\\+)*", collapse_runs=False),
        PeakCountQuery(2, count_tolerance=2),
        IntervalQuery(20.0, 8.0),
        SteepnessQuery(0.8, slope_tolerance=0.5),
        ShapeQuery(corpus[0], duration_tolerance=0.5, amplitude_tolerance=0.5),
        ExemplarQuery(corpus[1], epsilon=1.0),
    ]


def _append_db(breaker_factory, corpus, n_shards, installments=2):
    """Ingest prefixes, then append the tails in ``installments`` chunks."""
    db = SequenceDatabase(breaker=breaker_factory(), n_shards=n_shards)
    prefix_lens = [max(20, len(seq) // 3) for seq in corpus]
    db.insert_all([seq[:k] for seq, k in zip(corpus, prefix_lens)])
    for step in range(installments):
        items = []
        for sequence_id, (seq, k) in enumerate(zip(corpus, prefix_lens)):
            tail = np.array_split(np.arange(k, len(seq)), installments)[step]
            if tail.size == 0:
                continue
            items.append(
                (sequence_id, seq.values[tail], seq.times[tail])
            )
        db.append_many(items)
    return db


def _scratch_db(breaker_factory, corpus, n_shards):
    db = SequenceDatabase(breaker=breaker_factory(), n_shards=n_shards)
    db.insert_all(corpus)
    return db


BREAKERS = [
    lambda: IncrementalRegressionBreaker(0.35),
    lambda: SlidingWindowBreaker(0.5, window=8, degree=1),
    lambda: InterpolationBreaker(0.5),  # offline: full-rebreak fallback
]
BREAKER_IDS = ["incremental-regression", "sliding-window", "interpolation-offline"]


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("breaker_factory", BREAKERS, ids=BREAKER_IDS)
class TestAppendParity:
    def test_state_and_queries_byte_identical(self, breaker_factory, n_shards):
        corpus = _corpus()
        appended = _append_db(breaker_factory, corpus, n_shards)
        scratch = _scratch_db(breaker_factory, corpus, n_shards)

        assert appended.ids() == scratch.ids()
        for sequence_id in appended.ids():
            # Representations byte-identical through the codec.
            assert encode_representation(
                appended.representation_of(sequence_id)
            ) == encode_representation(scratch.representation_of(sequence_id))
            assert appended.peak_count_of(sequence_id) == scratch.peak_count_of(
                sequence_id
            )
            assert np.array_equal(
                appended.rr_intervals_of(sequence_id),
                scratch.rr_intervals_of(sequence_id),
            )
            for collapse in (False, True):
                assert appended.store.symbols_of(
                    sequence_id, collapse_runs=collapse
                ) == scratch.store.symbols_of(sequence_id, collapse_runs=collapse)
            # Raw tier holds the full data.
            assert appended.raw_sequence(sequence_id) == scratch.raw_sequence(
                sequence_id
            )
        appended.store.check_consistency()

        for query in _queries(corpus):
            for include_approximate in (True, False):
                fast = appended.query(query, include_approximate, cache=False)
                assert fast == scratch.query(query, include_approximate, cache=False)
                assert fast == appended.query(
                    query, include_approximate, engine=False
                )


class TestAppendMechanics:
    def _db(self, **kwargs):
        db = SequenceDatabase(breaker=IncrementalRegressionBreaker(0.35), **kwargs)
        return db

    def test_default_times_continue_the_grid(self):
        db = self._db()
        rng = np.random.default_rng(0)
        full_values = rng.normal(0.0, 1.0, 80)
        sequence_id = db.insert(Sequence.from_values(full_values[:50], name="grid"))
        db.append(sequence_id, full_values[50:])
        scratch = self._db()
        scratch.insert(Sequence.from_values(full_values, name="grid"))
        assert db.raw_sequence(sequence_id) == scratch.raw_sequence(0)
        assert encode_representation(
            db.representation_of(sequence_id)
        ) == encode_representation(scratch.representation_of(0))

    def test_append_returns_new_length(self):
        db = self._db()
        sequence_id = db.insert(Sequence.from_values(np.arange(10.0), name="n"))
        assert db.append(sequence_id, [11.0, 9.0, 13.0]) == 13

    def test_append_requires_live_id_and_raw(self):
        db = self._db()
        with pytest.raises(QueryError):
            db.append(0, [1.0])
        rep_only = self._db()
        rep = InterpolationBreaker(0.5).represent(
            Sequence.from_values(np.arange(12.0)), curve_kind="regression"
        )
        sequence_id = rep_only.insert_representation(rep, name="norawa")
        with pytest.raises(QueryError, match="raw"):
            rep_only.append(sequence_id, [1.0])
        no_raw = self._db(keep_raw=False)
        sequence_id = no_raw.insert(Sequence.from_values(np.arange(12.0)))
        with pytest.raises(QueryError):
            no_raw.append(sequence_id, [1.0])

    def test_bad_payloads_mutate_nothing(self):
        db = self._db()
        sequence_id = db.insert(Sequence.from_values(np.arange(10.0), name="atomic"))
        before = encode_representation(db.representation_of(sequence_id))
        generation = db.store.generation
        with pytest.raises(QueryError):
            db.append_many([(sequence_id, [1.0]), (sequence_id, [2.0])])  # duplicate
        with pytest.raises(QueryError):
            db.append(sequence_id, [])
        with pytest.raises(QueryError):
            db.append(sequence_id, [1.0, 2.0], times=[99.0])  # length mismatch
        assert encode_representation(db.representation_of(sequence_id)) == before
        assert db.store.generation == generation

    def test_normalize_falls_back_to_full_rebreak(self):
        rng = np.random.default_rng(5)
        full = Sequence.from_values(rng.normal(0.0, 2.0, 90), name="z")
        for db, scratch in [
            (
                SequenceDatabase(breaker=IncrementalRegressionBreaker(0.3), normalize=True),
                SequenceDatabase(breaker=IncrementalRegressionBreaker(0.3), normalize=True),
            )
        ]:
            sequence_id = db.insert(full[:60])
            db.append(sequence_id, full.values[60:], times=full.times[60:])
            scratch.insert(full)
            assert encode_representation(
                db.representation_of(sequence_id)
            ) == encode_representation(scratch.representation_of(0))
            assert db.query(
                PeakCountQuery(3, count_tolerance=3), cache=False
            ) == scratch.query(PeakCountQuery(3, count_tolerance=3), cache=False)

    def test_append_drops_stale_variants(self):
        db = self._db()
        sequence_id = db.insert(Sequence.from_values(np.arange(30.0), name="v"))
        db.add_variant(sequence_id, "coarse", InterpolationBreaker(4.0))
        assert db.catalog.variants_of(sequence_id) == ["coarse", "default"]
        db.append(sequence_id, [3.0, 50.0])
        assert db.catalog.variants_of(sequence_id) == ["default"]

    def test_append_is_journalled_once_per_shard(self):
        db = self._db(n_shards=2)
        ids = db.insert_all(
            [Sequence.from_values(np.arange(20.0), name=f"s{i}") for i in range(4)]
        )
        baseline = db.store.generation_vector()
        db.append_many([(ids[0], [1.0, 5.0]), (ids[2], [2.0, 1.0])])  # both shard 0
        vector = db.store.generation_vector()
        assert vector[0] == baseline[0] + 1
        assert vector[1] == baseline[1]
        assert db.store.dirty_ids_since(baseline) == {ids[0], ids[2]}

    def test_archive_accounts_tail_bytes_only(self):
        db = self._db()
        sequence_id = db.insert(Sequence.from_values(np.arange(100.0), name="acct"))
        written_before = db.archive.log.bytes_written
        db.append(sequence_id, [1.0, 2.0])
        appended_bytes = db.archive.log.bytes_written - written_before
        assert 0 < appended_bytes < 100  # two float64 samples, not the history
