"""Tests for deleting sequences from the database and indexes."""

from __future__ import annotations

import pytest

from repro.core.errors import IndexError_, QueryError
from repro.query import PatternQuery, PeakCountQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


@pytest.fixture
def db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=4, n_one_peak=2, n_three_peak=2))
    return db


class TestDatabaseDelete:
    def test_delete_removes_from_queries(self, db):
        before = {m.sequence_id for m in db.query(PatternQuery(GOALPOST))}
        victim = next(iter(before))
        db.delete(victim)
        after = {m.sequence_id for m in db.query(PatternQuery(GOALPOST))}
        assert after == before - {victim}

    def test_delete_removes_from_ids(self, db):
        db.delete(0)
        assert 0 not in db.ids()
        assert len(db) == 7

    def test_deleted_access_rejected(self, db):
        db.delete(0)
        with pytest.raises(QueryError):
            db.representation_of(0)
        with pytest.raises(QueryError):
            db.name_of(0)

    def test_double_delete_rejected(self, db):
        db.delete(0)
        with pytest.raises(QueryError):
            db.delete(0)

    def test_unknown_delete_rejected(self, db):
        with pytest.raises(QueryError):
            db.delete(999)

    def test_raw_blob_stays_archived(self, db):
        """Archival media are append-only; deletion is logical."""
        db.delete(0)
        assert 0 in db.archive

    def test_peak_count_query_after_delete(self, db):
        before = {m.sequence_id for m in db.query(PeakCountQuery(2))}
        victim = next(iter(before))
        db.delete(victim)
        assert victim not in {m.sequence_id for m in db.query(PeakCountQuery(2))}

    def test_insert_after_delete_gets_fresh_id(self, db):
        db.delete(3)
        new_id = db.insert(fever_corpus(n_two_peak=1, n_one_peak=0, n_three_peak=0)[0])
        assert new_id == 8  # ids are never reused


class TestRRIndexDelete:
    def test_rr_index_consistent_after_delete(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
        db.insert_all(ecg_corpus(n_sequences=15, seed=8))
        victim = 3
        assert db.scan_rr(150.0, 30.0)  # sanity: queries return something
        db.delete(victim)
        db.rr_index.check_invariants()
        for target, delta in [(120.0, 10.0), (150.0, 30.0), (180.0, 5.0)]:
            assert db.rr_index.sequences_near(target, delta) == db.scan_rr(target, delta)

    def test_remove_sequence_returns_count(self):
        from repro.index.inverted import InvertedFileIndex

        index = InvertedFileIndex()
        index.add_all(1, [10.0, 20.0, 30.0])
        index.add_all(2, [10.0, 40.0])
        assert index.remove_sequence(1) == 3
        assert len(index) == 2
        assert index.sequences_in_range(0.0, 100.0) == [2]
        index.check_invariants()

    def test_empty_buckets_pruned(self):
        from repro.index.inverted import InvertedFileIndex

        index = InvertedFileIndex(bucket_width=1.0)
        index.add(5.0, 1)
        index.add(9.0, 2)
        index.remove_sequence(1)
        assert index.bucket_count() == 1


class TestTrieDelete:
    def test_remove_prunes_occurrences(self):
        from repro.index.trie import SymbolTrie

        trie = SymbolTrie()
        trie.add(0, "+-+")
        trie.add(1, "+-0")
        trie.remove(0)
        assert 0 not in trie
        assert all(occ.sequence_id == 1 for occ in trie.find("+-"))

    def test_remove_unknown_rejected(self):
        from repro.index.trie import SymbolTrie

        with pytest.raises(IndexError_):
            SymbolTrie().remove(7)

    def test_node_count_shrinks(self):
        from repro.index.trie import SymbolTrie

        trie = SymbolTrie()
        trie.add(0, "+-+-+-")
        full = trie.node_count()
        trie.add(1, "000")
        trie.remove(1)
        assert trie.node_count() == full

    def test_readd_after_remove(self):
        from repro.index.trie import SymbolTrie

        trie = SymbolTrie()
        trie.add(0, "+-")
        trie.remove(0)
        trie.add(0, "-+")
        assert trie.symbols_of(0) == "-+"
