"""Tests for the individual query types."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.tolerance import MatchGrade
from repro.query import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    SteepnessQuery,
)
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever, k_peak_sequence


@pytest.fixture
def db():
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert(k_peak_sequence([12.0], noise=0.0, name="one"))
    db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="two"))
    db.insert(k_peak_sequence([4.0, 12.0, 20.0], noise=0.0, name="three"))
    return db


class TestPatternQuery:
    def test_exact_members_only(self, db):
        matches = db.query(PatternQuery("(0|-)* + (0|-)^+ + (0|-)*"))
        assert [m.name for m in matches] == ["two"]
        assert matches[0].grade is MatchGrade.EXACT

    def test_grades_are_binary(self, db):
        query = PatternQuery("(0|-)* + (0|-)*")
        match = query.grade(db, 0)
        assert match.grade is MatchGrade.EXACT
        reject = query.grade(db, 2)
        assert reject.grade is MatchGrade.REJECT


class TestPeakCountQuery:
    def test_exact(self, db):
        matches = db.query(PeakCountQuery(3))
        assert [m.name for m in matches] == ["three"]

    def test_approximate_with_tolerance(self, db):
        matches = db.query(PeakCountQuery(2, count_tolerance=1))
        assert {m.name for m in matches} == {"one", "two", "three"}
        exact = [m for m in matches if m.is_exact]
        assert [m.name for m in exact] == ["two"]

    def test_deviation_amounts(self, db):
        query = PeakCountQuery(2, count_tolerance=1)
        match = query.grade(db, 2)  # the three-peak sequence
        assert match.deviation_in("peak_count").amount == 1.0

    def test_negative_count_rejected(self):
        with pytest.raises(QueryError):
            PeakCountQuery(-1)


class TestIntervalQuery:
    def test_exact_and_approximate(self, db):
        # "two" has peaks near hours 6 and 18: interval ~12.
        matches = db.query(IntervalQuery(12.0, 1.5))
        assert any(m.name == "two" for m in matches)

    def test_no_peak_sequences_rejected(self, db):
        query = IntervalQuery(12.0, 1.0)
        match = query.grade(db, 0)  # one peak -> no intervals
        assert match.grade is MatchGrade.REJECT

    def test_bad_target_rejected(self):
        with pytest.raises(QueryError):
            IntervalQuery(0.0, 1.0)

    def test_candidates_via_index(self, db):
        query = IntervalQuery(12.0, 2.0)
        candidates = query.candidates(db)
        assert candidates is not None
        scan = db.scan_rr(12.0, 2.0)
        assert candidates == scan


class TestSteepnessQuery:
    def test_steep_rise_found(self, db):
        # Fever rises are around 3-5 degrees/hour at their steepest.
        matches = db.query(SteepnessQuery(1.0))
        assert len(matches) == 3  # every fever curve rises that fast

    def test_too_steep_rejects_all(self, db):
        assert db.query(SteepnessQuery(100.0)) == []

    def test_tolerance_admits_shortfall(self, db):
        rep = db.representation_of(1)
        steepest = max(s for s in rep.slopes() if s > 0)
        demanding = SteepnessQuery(steepest + 0.5, slope_tolerance=1.0)
        match = demanding.grade(db, 1)
        assert match.grade is MatchGrade.APPROXIMATE

    def test_bad_slope_rejected(self):
        with pytest.raises(QueryError):
            SteepnessQuery(0.0)


class TestExemplarQuery:
    def test_identical_sequence_exact(self, db):
        exemplar = k_peak_sequence([6.0, 18.0], noise=0.0)
        matches = db.query(ExemplarQuery(exemplar, epsilon=0.5))
        exact = [m for m in matches if m.is_exact]
        assert [m.name for m in exact] == ["two"]

    def test_different_lengths_rejected(self, db):
        exemplar = goalpost_fever(n_points=33)
        assert db.query(ExemplarQuery(exemplar, epsilon=100.0)) == []

    def test_negative_epsilon_rejected(self):
        with pytest.raises(QueryError):
            ExemplarQuery(goalpost_fever(), epsilon=-1.0)
