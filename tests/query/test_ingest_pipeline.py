"""IngestPipeline: buffering, auto-flush, and parity with direct ingest."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.sequence import Sequence
from repro.query import IngestPipeline, PeakCountQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus


def make_db(**kwargs):
    return SequenceDatabase(breaker=InterpolationBreaker(0.5), **kwargs)


def corpus():
    return fever_corpus(n_two_peak=5, n_one_peak=4, n_three_peak=4)


class TestBuffering:
    def test_add_buffers_until_batch_size(self):
        db = make_db()
        pipeline = db.ingest_pipeline(batch_size=4)
        for i, sequence in enumerate(corpus()[:3]):
            pipeline.add(sequence)
            assert pipeline.pending == i + 1
        assert len(db) == 0  # nothing queryable before the flush

    def test_auto_flush_at_batch_size(self):
        db = make_db()
        pipeline = db.ingest_pipeline(batch_size=4)
        pipeline.add_many(corpus()[:9])
        # Two full batches flushed, one sequence still buffered.
        assert len(db) == 8
        assert pipeline.pending == 1
        assert pipeline.ingested_ids == list(range(8))

    def test_flush_returns_new_ids_and_drains(self):
        db = make_db()
        pipeline = db.ingest_pipeline(batch_size=100)
        pipeline.add_many(corpus()[:5])
        assert pipeline.flush() == [0, 1, 2, 3, 4]
        assert pipeline.pending == 0
        assert pipeline.flush() == []  # idempotent on an empty buffer
        assert len(db) == 5

    def test_context_manager_flushes_trailing_batch(self):
        db = make_db()
        with db.ingest_pipeline(batch_size=4) as pipeline:
            pipeline.add_many(corpus()[:6])
        assert len(db) == 6
        assert pipeline.pending == 0

    def test_no_flush_after_exception(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.ingest_pipeline(batch_size=100) as pipeline:
                pipeline.add_many(corpus()[:3])
                raise RuntimeError("upstream failed")
        assert len(db) == 0
        assert pipeline.pending == 3  # buffer intact for inspection

    def test_batch_size_validated(self):
        with pytest.raises(QueryError, match="batch size"):
            make_db().ingest_pipeline(batch_size=0)

    def test_repr_reports_progress(self):
        pipeline = make_db().ingest_pipeline(batch_size=4)
        pipeline.add(corpus()[0])
        assert "pending=1" in repr(pipeline)


class TestParityWithDirectIngest:
    @pytest.mark.parametrize("n_shards", [None, 3])
    def test_same_database_state_as_per_insert(self, n_shards):
        sequences = corpus()
        direct = make_db(n_shards=n_shards)
        for sequence in sequences:
            direct.insert(sequence)
        piped = make_db(n_shards=n_shards)
        with piped.ingest_pipeline(batch_size=4) as pipeline:
            pipeline.add_many(sequences)
        assert piped.ids() == direct.ids()
        assert [piped.name_of(i) for i in piped.ids()] == [
            direct.name_of(i) for i in direct.ids()
        ]
        piped.store.check_consistency()
        for count in (1, 2, 3):
            assert piped.query(PeakCountQuery(count), cache=False) == direct.query(
                PeakCountQuery(count), cache=False
            )

    def test_standalone_construction(self):
        db = make_db()
        pipeline = IngestPipeline(db, batch_size=2)
        pipeline.add_many(corpus()[:2])
        assert len(db) == 2


class TestBlockBuffering:
    """The NumPy front door: add_block / bulk add_many."""

    def test_add_block_matches_per_sequence_adds(self):
        import numpy as np

        rng = np.random.default_rng(0)
        block = rng.normal(0.0, 1.0, (7, 40))
        names = [f"b{i}" for i in range(7)]

        direct = make_db()
        with direct.ingest_pipeline(batch_size=3) as pipeline:
            for row, name in zip(block, names):
                pipeline.add(Sequence.from_values(row, name=name))

        blocked = make_db()
        with blocked.ingest_pipeline(batch_size=3) as pipeline:
            pipeline.add_block(block, names=names)

        assert blocked.ids() == direct.ids()
        for sequence_id in direct.ids():
            assert blocked.name_of(sequence_id) == direct.name_of(sequence_id)
            assert blocked.raw_sequence(sequence_id) == direct.raw_sequence(sequence_id)
        query = PeakCountQuery(1, count_tolerance=5)
        assert blocked.query(query, cache=False) == direct.query(query, cache=False)

    def test_add_block_with_explicit_times(self):
        import numpy as np

        db = make_db()
        times = np.array([0.0, 0.5, 1.5, 4.0])
        with db.ingest_pipeline(batch_size=10) as pipeline:
            pipeline.add_block([[1.0, 2.0, 1.0, 0.0]], times=times)
        assert np.array_equal(db.raw_sequence(0).times, times)

    def test_add_block_validates_like_sequences(self):
        import numpy as np

        from repro.core.errors import SequenceError

        db = make_db()
        pipeline = db.ingest_pipeline()
        with pytest.raises(SequenceError):
            pipeline.add_block(np.ones((2, 3, 1)))  # not 2-D
        with pytest.raises(SequenceError):
            pipeline.add_block([[1.0, float("nan")]])
        with pytest.raises(SequenceError):
            pipeline.add_block([[1.0, 2.0]], times=[3.0, 1.0])  # not increasing
        with pytest.raises(SequenceError):
            pipeline.add_block([[1.0, 2.0]], names=["only-one", "too-many"])
        assert pipeline.pending == 0  # nothing buffered from bad blocks

    def test_add_many_accepts_any_iterable(self):
        db = make_db()
        pipeline = db.ingest_pipeline(batch_size=4)
        pipeline.add_many(iter(corpus()[:6]))
        assert len(db) == 4
        assert pipeline.pending == 2
