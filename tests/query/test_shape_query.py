"""Tests for exemplar-based ShapeQuery."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.tolerance import MatchGrade
from repro.core.transformations import AmplitudeScale, TimeScale, TimeShift
from repro.query import SequenceDatabase, ShapeQuery
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever, k_peak_sequence


@pytest.fixture
def db():
    # Normalization at ingest (paper Section 7) makes one epsilon serve
    # every amplitude scaling of the same shape.
    db = SequenceDatabase(breaker=InterpolationBreaker(0.1), theta=0.0, normalize=True)
    base = goalpost_fever(noise=0.0, name="base")
    db.insert(base)
    db.insert(TimeShift(5.0)(base).with_name("shifted"))
    db.insert(TimeScale(2.0)(base).with_name("dilated"))
    db.insert(AmplitudeScale(1.7, baseline=98.0)(base).with_name("scaled"))
    db.insert(k_peak_sequence([12.0], noise=0.0, name="one-peak"))
    db.insert(k_peak_sequence([4.0, 12.0, 20.0], noise=0.0, name="three-peak"))
    return db


class TestShapeQuery:
    def test_transforms_match_exactly(self, db):
        query = ShapeQuery(goalpost_fever(noise=0.0), duration_tolerance=0.05, amplitude_tolerance=0.05)
        matches = db.query(query)
        names = {m.name for m in matches}
        assert {"base", "shifted", "dilated", "scaled"} <= names
        assert "one-peak" not in names
        assert "three-peak" not in names
        for match in matches:
            if match.name in {"base", "shifted", "dilated", "scaled"}:
                assert match.grade is MatchGrade.EXACT, match

    def test_structurally_different_rejected(self, db):
        query = ShapeQuery(goalpost_fever(noise=0.0))
        reject = query.grade(db, 4)  # one-peak
        assert reject.grade is MatchGrade.REJECT
        assert reject.deviation_in("shape_duration").amount == float("inf")

    def test_representation_exemplar_accepted(self, db):
        rep = db.representation_of(0)
        query = ShapeQuery(rep, duration_tolerance=0.05, amplitude_tolerance=0.05)
        assert any(m.name == "dilated" and m.is_exact for m in db.query(query))

    def test_tolerance_grades_same_structure_variants(self, db):
        # A two-peak curve with different peak widths: same symbols,
        # different duration proportions -> approximate under a loose
        # tolerance, rejected under a tight one.
        wide = k_peak_sequence([6.0, 18.0], widths=[2.8, 2.8], noise=0.0, name="wide")
        wide_id = db.insert(wide)
        query_loose = ShapeQuery(goalpost_fever(noise=0.0), duration_tolerance=0.5, amplitude_tolerance=0.5)
        graded = query_loose.grade(db, wide_id)
        if graded.grade is not MatchGrade.REJECT:
            assert graded.deviation_in("shape_duration").within

    def test_bad_exemplar_rejected(self):
        with pytest.raises(QueryError):
            ShapeQuery(42)


class TestShapeQueryViaLanguage:
    def test_shape_of_parses_and_runs(self, db):
        from repro.query import parse_query

        query = parse_query("SHAPE OF 0 DURATION 0.05 AMPLITUDE 0.05", db)
        names = {m.name for m in db.query(query)}
        assert "dilated" in names

    def test_shape_of_needs_database(self):
        from repro.query import parse_query

        with pytest.raises(QueryError):
            parse_query("SHAPE OF 0")


class TestSignatureCacheSafety:
    """Regression: the per-database signature memo must not key on id().

    CPython recycles object ids, so an id-keyed memo could serve a
    signature built under a dead database's breaker/normalize config to
    a brand-new database that happens to reuse the id.  The memo now
    holds a weak reference plus the pipeline config.
    """

    def test_recomputes_for_a_new_database_after_gc(self):
        import gc

        exemplar = goalpost_fever(noise=0.0)
        query = ShapeQuery(exemplar, duration_tolerance=0.5, amplitude_tolerance=0.5)

        db1 = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db1.insert(exemplar)
        first = query._signature_for(db1)
        assert query._cache_ref() is db1
        del db1
        gc.collect()
        assert query._cache_ref() is None  # memo cannot outlive its database

        # A coarser pipeline must yield its own signature, never the memo.
        db2 = SequenceDatabase(breaker=InterpolationBreaker(8.0), theta=0.5)
        db2.insert(exemplar)
        second = query._signature_for(db2)
        assert query._cache_ref() is db2
        assert second.symbols != first.symbols or second is not first

    def test_memo_does_not_pin_database(self):
        import gc
        import weakref

        query = ShapeQuery(goalpost_fever(noise=0.0))
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(goalpost_fever())
        query._signature_for(db)
        ref = weakref.ref(db)
        del db
        gc.collect()
        assert ref() is None

    def test_reassigned_breaker_invalidates_memo(self):
        exemplar = goalpost_fever(noise=0.0)
        query = ShapeQuery(exemplar, duration_tolerance=0.5, amplitude_tolerance=0.5)
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(exemplar)
        query._signature_for(db)
        db.breaker = InterpolationBreaker(8.0)
        fresh = ShapeQuery(exemplar)._signature_for(db)
        assert query._signature_for(db).symbols == fresh.symbols

    def test_memo_still_caches_repeated_calls(self):
        query = ShapeQuery(goalpost_fever(noise=0.0))
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(goalpost_fever())
        assert query._signature_for(db) is query._signature_for(db)

    def test_alternating_databases_stay_correct(self):
        exemplar = goalpost_fever(noise=0.0)
        query = ShapeQuery(exemplar, duration_tolerance=0.5, amplitude_tolerance=0.5)
        fine = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        coarse = SequenceDatabase(breaker=InterpolationBreaker(8.0), theta=0.5)
        for db in (fine, coarse, fine, coarse):
            db_signature = query._signature_for(db)
            rebuilt = ShapeQuery(exemplar)._signature_for(db)
            assert db_signature.symbols == rebuilt.symbols
