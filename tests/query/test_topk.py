"""Top-k similarity search: pruned answers are byte-identical to the
full-grade-then-sort path, across shard counts and mutations.

The contract mirrors the cache-delta suite's: ``db.query(TopKQuery(...))``
through the pruned engine path must equal ``db.query_legacy`` (which
grades every live sequence and cuts) and the raw ``all_distances``
oracle, for every shard count, every ``k``, with and without a
``max_distance`` radius, before and after interleaved
insert / append / delete — ids tie-broken ascending.
"""

from __future__ import annotations

import math

import pytest

from repro.core.errors import QueryError
from repro.query import (
    PeakCountQuery,
    SequenceDatabase,
    TopKQuery,
    parse_query,
)
from repro.segmentation.online import IncrementalRegressionBreaker
from repro.workloads import latency_trace, server_metrics_corpus

SHARD_COUNTS = [None, 2, 7]


def _metrics_db(n_shards, n=36, seed=17, max_workers=None):
    db = SequenceDatabase(
        breaker=IncrementalRegressionBreaker(0.5),
        n_shards=n_shards,
        max_workers=max_workers,
    )
    db.insert_all(server_metrics_corpus(n_sequences=n, seed=seed))
    return db


def _mutate_script(db):
    """Interleaved insert / append / delete steps, yielding after each."""
    extra = server_metrics_corpus(n_sequences=6, seed=91)
    yield "insert", db.insert_all(extra[:3])
    db.delete_many(db.ids()[1:3])
    yield "delete", None
    db.append(db.ids()[0], [44.0, 47.0, 41.0, 45.0])
    yield "append", None
    db.insert_all(extra[3:])
    db.delete(db.ids()[-2])
    yield "mixed", None


def _match_tuples(matches):
    return [
        (m.sequence_id, m.grade.name, m.total_deviation, tuple(d.amount for d in m.deviations))
        for m in matches
    ]


# ----------------------------------------------------------------------
# Parity: engine vs legacy vs oracle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_topk_matches_legacy_across_mutations(n_shards):
    db = _metrics_db(n_shards)
    exemplar = latency_trace(baseline=45.0, n_bursts=3, seed=5, name="probe")
    for k in (1, 4, 11):
        query = TopKQuery(exemplar, k)
        assert _match_tuples(db.query(query)) == _match_tuples(
            db.query(query, engine=False)
        )
    query = TopKQuery(exemplar, 5)
    for _step, __ in _mutate_script(db):
        engine = db.query(query)
        legacy = db.query(query, engine=False)
        assert _match_tuples(engine) == _match_tuples(legacy)
        ids = [m.sequence_id for m in engine]
        assert len(ids) == min(5, len(db.ids()))


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_topk_matches_all_distances_oracle(n_shards):
    db = _metrics_db(n_shards, n=28)
    exemplar = latency_trace(baseline=75.0, seed=7, name="probe")
    k = 9
    matches = db.query(TopKQuery(exemplar, k))
    pairs = []
    for shard in db.store.shards():
        index = shard.cluster_index()
        query_features = TopKQuery(exemplar, k)._features_for(db)
        ids, distances = index.all_distances(query_features)
        pairs.extend(zip(distances.tolist(), ids.tolist()))
    expected = [sequence_id for __, sequence_id in sorted(pairs)[:k]]
    assert [m.sequence_id for m in matches] == expected
    distances = [m.deviations[0].amount for m in matches]
    assert distances == sorted(distances)


@pytest.mark.parametrize("n_shards", [None, 7])
def test_topk_max_distance_radius(n_shards):
    db = _metrics_db(n_shards, n=24)
    exemplar = latency_trace(baseline=45.0, seed=3, name="probe")
    unbounded = db.query(TopKQuery(exemplar, 24))
    radius = unbounded[len(unbounded) // 2].deviations[0].amount
    bounded = db.query(TopKQuery(exemplar, 24, max_distance=radius))
    legacy = db.query(TopKQuery(exemplar, 24, max_distance=radius), engine=False)
    assert _match_tuples(bounded) == _match_tuples(legacy)
    assert all(m.deviations[0].amount <= radius + 1e-12 for m in bounded)
    assert len(bounded) < len(unbounded)
    # Exact-only mode keeps only (near-)zero-distance matches.
    twin = db.insert(latency_trace(baseline=45.0, seed=3, name="probe-twin"))
    exact = db.query(TopKQuery(exemplar, 5), include_approximate=False)
    assert [m.sequence_id for m in exact] == [twin]
    assert _match_tuples(exact) == _match_tuples(
        db.query(TopKQuery(exemplar, 5), include_approximate=False, engine=False)
    )


def test_topk_tie_break_is_ascending_id():
    db = _metrics_db(None, n=10)
    trace = latency_trace(baseline=33.0, seed=41, name="twin")
    first = db.insert(trace)
    second = db.insert(trace)
    matches = db.query(TopKQuery(trace, 2))
    assert [m.sequence_id for m in matches] == [first, second]


def test_topk_exemplar_may_be_representation():
    db = _metrics_db(None, n=12)
    anchor = db.ids()[4]
    matches = db.query(TopKQuery(db.representation_of(anchor), 3))
    assert matches[0].sequence_id == anchor
    assert matches[0].deviations[0].amount == 0.0


# ----------------------------------------------------------------------
# limit= on generic queries
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [None, 2])
def test_limit_on_generic_query_is_prefix_of_full(n_shards):
    db = _metrics_db(n_shards, n=30)
    query = PeakCountQuery(2, count_tolerance=6)
    full = db.query(query)
    assert len(full) > 3
    for limit in (1, 3, len(full) + 10):
        limited = db.query(query, limit=limit)
        assert _match_tuples(limited) == _match_tuples(full[:limit])
    legacy = db.query(query, engine=False, limit=3)
    assert _match_tuples(legacy) == _match_tuples(full[:3])


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_topk_constructor_validation():
    trace = latency_trace(seed=1)
    for bad_k in (0, -2, True, 1.5, "3", None):
        with pytest.raises(QueryError):
            TopKQuery(trace, bad_k)
    for bad_distance in (-1.0, math.nan):
        with pytest.raises(QueryError):
            TopKQuery(trace, 3, max_distance=bad_distance)
    with pytest.raises(QueryError):
        TopKQuery([1.0, 2.0, 3.0], 3)


def test_limit_validation():
    db = _metrics_db(None, n=8)
    query = PeakCountQuery(2, count_tolerance=2)
    for bad_limit in (0, -1, True, 2.5):
        with pytest.raises(QueryError):
            db.query(query, limit=bad_limit)
    with pytest.raises(QueryError):
        db.query(TopKQuery(latency_trace(seed=1), 3), limit=3)
    with pytest.raises(QueryError):
        db.explain(query, limit=0)


# ----------------------------------------------------------------------
# Language form and explain
# ----------------------------------------------------------------------


def test_nearest_language_form():
    db = _metrics_db(None, n=12)
    anchor = db.ids()[2]
    query = parse_query(f"NEAREST 4 TO {anchor}", database=db)
    assert isinstance(query, TopKQuery)
    assert query.k == 4
    matches = db.query(query)
    assert matches[0].sequence_id == anchor
    assert len(matches) == 4
    bounded = parse_query(f"NEAREST 4 TO {anchor} WITHIN 0.5", database=db)
    assert bounded.max_distance == 0.5
    assert [m.sequence_id for m in db.query(bounded)] == [anchor]
    with pytest.raises(QueryError):
        parse_query("NEAREST 4 TO 2")  # needs a database to resolve the id
    with pytest.raises(QueryError):
        parse_query("NEAREST TO 2", database=db)


def test_explain_shows_pruned_stages_and_limit():
    db = _metrics_db(None, n=12)
    text = db.explain(TopKQuery(latency_trace(seed=2), 7))
    assert "probe-representatives" in text
    assert "lower-bound-prune" in text
    assert "heap-refine" in text
    assert "[limit=7]" in text
    limited = db.explain(PeakCountQuery(2, count_tolerance=2), limit=5)
    assert "[limit=5]" in limited


def test_storage_report_topk_telemetry():
    db = _metrics_db(2, n=20)
    report = db.storage_report()
    assert report["topk"]["built"] is False
    db.query(TopKQuery(latency_trace(baseline=45.0, seed=9), 5))
    report = db.storage_report()
    topk = report["topk"]
    assert topk["built"] is True
    assert topk["queries"] >= 1
    assert topk["representatives"] >= 2
    assert topk["sequences"] == 20
    assert 0.0 <= topk["last_pruned_fraction"] <= 1.0
