"""Regression: ExemplarQuery against representation-only sequences.

Sequences ingested via ``insert_representation`` have no archived raw
data; value-based grading used to crash with a storage-layer
``StorageError: sequence N not archived``.  It must instead reject them
with an infinite ``value_distance`` deviation (engine and legacy alike),
and a database that archives nothing at all must fail with a clean
``QueryError`` up front.
"""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError, StorageError
from repro.core.tolerance import MatchGrade
from repro.query import ExemplarQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever, k_peak_sequence


@pytest.fixture
def mixed_db():
    """Two archived sequences plus one representation-only sequence."""
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="archived-match"))
    db.insert(k_peak_sequence([4.0, 12.0, 20.0], noise=0.2, name="archived-other"))
    rep = InterpolationBreaker(0.5).represent(
        k_peak_sequence([6.0, 18.0], noise=0.0, name="rep-only"), curve_kind="regression"
    )
    db.insert_representation(rep, name="rep-only")
    return db


class TestRepresentationOnlyCandidates:
    def test_no_storage_error_on_either_path(self, mixed_db):
        query = ExemplarQuery(k_peak_sequence([6.0, 18.0], noise=0.0), epsilon=0.5)
        engine = mixed_db.query(query)
        legacy = mixed_db.query(query, engine=False)
        assert engine == legacy
        assert [m.sequence_id for m in engine] == [0]

    def test_rep_only_candidate_graded_reject_with_infinite_deviation(self, mixed_db):
        query = ExemplarQuery(k_peak_sequence([6.0, 18.0], noise=0.0), epsilon=0.5)
        rep_only_id = 2
        assert not mixed_db.has_raw(rep_only_id)
        match = query.grade(mixed_db, rep_only_id)
        assert match.grade is MatchGrade.REJECT
        deviation = match.deviation_in("value_distance")
        assert deviation is not None and deviation.amount == float("inf")

    def test_grading_rep_only_reads_nothing_from_archive(self, mixed_db):
        query = ExemplarQuery(k_peak_sequence([6.0, 18.0], noise=0.0), epsilon=0.5)
        reads_before = mixed_db.archive.log.reads
        query.grade(mixed_db, 2)
        assert mixed_db.archive.log.reads == reads_before

    def test_all_rep_only_database_returns_empty(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        rep = InterpolationBreaker(0.5).represent(goalpost_fever(), curve_kind="regression")
        db.insert_representation(rep, name="only")
        query = ExemplarQuery(goalpost_fever(), epsilon=100.0)
        assert db.query(query) == []
        assert db.query(query, engine=False) == []

    def test_raw_sequence_still_raises_storage_error(self, mixed_db):
        with pytest.raises(StorageError):
            mixed_db.raw_sequence(2)


class TestKeepRawFalse:
    def test_clean_query_error_when_nothing_archived(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), keep_raw=False)
        db.insert(goalpost_fever())
        query = ExemplarQuery(goalpost_fever(), epsilon=1.0)
        with pytest.raises(QueryError, match="keep_raw"):
            db.query(query)
        with pytest.raises(QueryError, match="keep_raw"):
            db.query(query, engine=False)

    def test_both_paths_raise_even_on_empty_database(self):
        # Parity includes the error contract: an empty keep_raw=False
        # database must not return [] on one path and raise on the other.
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), keep_raw=False)
        query = ExemplarQuery(goalpost_fever(), epsilon=1.0)
        with pytest.raises(QueryError, match="keep_raw"):
            db.query(query)
        with pytest.raises(QueryError, match="keep_raw"):
            db.query(query, engine=False)

    def test_has_raw(self, mixed_db):
        assert mixed_db.has_raw(0)
        assert mixed_db.has_raw(1)
        assert not mixed_db.has_raw(2)
        no_raw = SequenceDatabase(breaker=InterpolationBreaker(0.5), keep_raw=False)
        sequence_id = no_raw.insert(goalpost_fever())
        assert not no_raw.has_raw(sequence_id)
        with pytest.raises(QueryError):
            mixed_db.has_raw(999)
