"""Tests for the textual query language."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.query import (
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    SteepnessQuery,
    parse_query,
)
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus


class TestParsing:
    def test_pattern(self):
        query = parse_query("PATTERN '(0|-)* + (0|-)^+ + (0|-)*'")
        assert isinstance(query, PatternQuery)
        assert query.pattern.fullmatch("+-+-")

    def test_pattern_double_quotes(self):
        query = parse_query('PATTERN "+ -"')
        assert isinstance(query, PatternQuery)

    def test_peaks(self):
        query = parse_query("PEAKS 2")
        assert isinstance(query, PeakCountQuery)
        assert query.count == 2
        assert query.tolerance.bound == 0.0

    def test_peaks_with_tolerance(self):
        query = parse_query("peaks 3 tolerance 1")  # case-insensitive
        assert query.count == 3
        assert query.tolerance.bound == 1.0

    def test_interval(self):
        query = parse_query("INTERVAL 135 +/- 5")
        assert isinstance(query, IntervalQuery)
        assert query.target == 135.0
        assert query.tolerance.bound == 5.0

    def test_interval_floats(self):
        query = parse_query("INTERVAL 12.5 +/- 0.5")
        assert query.target == 12.5

    def test_steepness(self):
        query = parse_query("STEEPNESS 5")
        assert isinstance(query, SteepnessQuery)
        assert query.min_slope == 5.0

    def test_steepness_with_tolerance(self):
        query = parse_query("STEEPNESS 5 TOLERANCE 1.5")
        assert query.tolerance.bound == 1.5

    def test_whitespace_tolerant(self):
        assert isinstance(parse_query("   PEAKS 2   "), PeakCountQuery)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "FROBNICATE 3",
            "PATTERN missing-quotes",
            "PEAKS",
            "PEAKS two",
            "INTERVAL 135",
            "INTERVAL 135 +- 5",
            "STEEPNESS",
            "SHAPE 3",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)

    def test_unknown_keyword_lists_known(self):
        with pytest.raises(QueryError) as exc:
            parse_query("SELECT * FROM t")
        assert "PATTERN" in str(exc.value)


class TestEndToEnd:
    def test_language_equals_objects(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert_all(fever_corpus(n_two_peak=5, n_one_peak=3, n_three_peak=3))
        from_text = {m.sequence_id for m in db.query(parse_query("PEAKS 2"))}
        from_object = {m.sequence_id for m in db.query(PeakCountQuery(2))}
        assert from_text == from_object

        text_pattern = {m.sequence_id for m in db.query(parse_query("PATTERN '(0|-)* + (0|-)^+ + (0|-)*'"))}
        assert text_pattern == from_object
