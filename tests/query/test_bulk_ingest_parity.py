"""End-to-end bulk ingest parity: insert_all == repeated insert.

The batched ingest path replaces every per-sequence stage — breaking,
representation, symbol classification, pattern/behaviour indexing,
peak extraction, R-R postings, columnar append — with whole-batch
kernels.  These tests pin the contract: the database state after
``insert_all`` (or the pipeline) is byte-identical to per-sequence
``insert``, across plain / normalized / sharded configurations, and
queries answer identically on both (including the legacy oracle).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import (
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus

SEGMENT_COLUMNS = (
    "sequence",
    "start_index",
    "end_index",
    "start_time",
    "end_time",
    "start_value",
    "end_value",
    "slope",
    "symbol",
)


@pytest.fixture(scope="module")
def corpus():
    return fever_corpus(n_two_peak=15, n_one_peak=10, n_three_peak=10) + ecg_corpus(
        n_sequences=5, n_points=300
    )


def _build(corpus, batched: bool, **kwargs) -> SequenceDatabase:
    database = SequenceDatabase(breaker=InterpolationBreaker(0.5), **kwargs)
    if batched:
        with database.ingest_pipeline(batch_size=13) as pipeline:
            pipeline.add_many(corpus)
    else:
        for sequence in corpus:
            database.insert(sequence)
    return database


def _assert_stores_equal(a: SequenceDatabase, b: SequenceDatabase) -> None:
    for shard_a, shard_b in zip(a.store.shards(), b.store.shards()):
        shard_b.check_consistency()
        for name in SEGMENT_COLUMNS:
            assert np.array_equal(
                shard_a.segment_column(name), shard_b.segment_column(name)
            ), name
        assert np.array_equal(shard_a.sequence_ids, shard_b.sequence_ids)
        assert np.array_equal(shard_a.behavior_symbols, shard_b.behavior_symbols)
        assert np.array_equal(shard_a.behavior_sequences, shard_b.behavior_sequences)
        assert np.array_equal(shard_a.rr_values, shard_b.rr_values)
        assert np.array_equal(shard_a.rr_sequences, shard_b.rr_sequences)
        assert np.array_equal(shard_a.peak_counts, shard_b.peak_counts)
        assert np.array_equal(shard_a.max_rising_slopes, shard_b.max_rising_slopes)
        assert np.array_equal(shard_a.source_lengths, shard_b.source_lengths)


@pytest.mark.parametrize(
    "kwargs",
    [{}, {"normalize": True}, {"n_shards": 4}, {"keep_raw": False}],
    ids=["plain", "normalized", "sharded", "no-raw"],
)
def test_insert_all_state_identical(corpus, kwargs):
    direct = _build(corpus, batched=False, **kwargs)
    batched = _build(corpus, batched=True, **kwargs)
    assert direct.ids() == batched.ids()
    for sequence_id in direct.ids():
        ra = direct.representation_of(sequence_id)
        rb = batched.representation_of(sequence_id)
        assert ra.segments == rb.segments
        assert all(
            x.function.parameters() == y.function.parameters()
            for x, y in zip(ra.segments, rb.segments)
        )
        assert direct.name_of(sequence_id) == batched.name_of(sequence_id)
        assert direct.peak_count_of(sequence_id) == batched.peak_count_of(sequence_id)
        assert np.array_equal(
            direct.rr_intervals_of(sequence_id), batched.rr_intervals_of(sequence_id)
        )
        assert direct.pattern_index.symbols_of(sequence_id) == batched.pattern_index.symbols_of(
            sequence_id
        )
        assert direct.behavior_index.symbols_of(sequence_id) == batched.behavior_index.symbols_of(
            sequence_id
        )
    assert direct.pattern_index._trie.node_count() == batched.pattern_index._trie.node_count()
    assert direct.behavior_index._trie.node_count() == batched.behavior_index._trie.node_count()
    assert len(direct.rr_index) == len(batched.rr_index)
    assert direct.rr_index.bucket_count() == batched.rr_index.bucket_count()
    batched.rr_index.check_invariants()
    _assert_stores_equal(direct, batched)


def test_queries_agree_across_paths(corpus):
    direct = _build(corpus, batched=False)
    batched = _build(corpus, batched=True, n_shards=3)
    exemplar = direct.representation_of(direct.ids()[0])
    queries = [
        PatternQuery("(0|-)* + (0|-)^+ + (0|-)*"),
        PeakCountQuery(2, count_tolerance=1),
        SteepnessQuery(1.5, slope_tolerance=0.5),
        IntervalQuery(8.0, 4.0),
        ShapeQuery(exemplar, duration_tolerance=0.1, amplitude_tolerance=0.1),
    ]
    for query in queries:
        expected = direct.query(query, cache=False)
        assert batched.query(query, cache=False) == expected
        assert batched.query_legacy(query) == expected


def test_pipeline_interleaves_with_single_inserts_and_deletes(corpus):
    database = SequenceDatabase(breaker=InterpolationBreaker(0.5), n_shards=2)
    pipeline = database.ingest_pipeline(batch_size=8)
    pipeline.add_many(corpus[:10])
    pipeline.flush()
    single_id = database.insert(corpus[10])
    database.delete(database.ids()[0])
    pipeline.add_many(corpus[11:20])
    pipeline.flush()
    for shard in database.store.shards():
        shard.check_consistency()
    assert single_id in database.ids()
    assert len(database) == 19


def test_insert_all_empty_batch():
    database = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    assert database.insert_all([]) == []
    assert len(database) == 0
