"""End-to-end flows across domains and configurations."""

from __future__ import annotations

import pytest

from repro.core.features import count_peaks
from repro.core.transformations import BoundedNoise
from repro.preprocessing import compress_wavelet, moving_average, znormalize
from repro.query import PatternQuery, PeakCountQuery, SequenceDatabase, SteepnessQuery
from repro.segmentation import (
    BezierBreaker,
    DynamicProgrammingBreaker,
    InterpolationBreaker,
    RegressionBreaker,
    SlidingWindowBreaker,
)
from repro.workloads import (
    fever_corpus,
    goalpost_fever,
    seismic_sequence,
    stock_sequence,
)

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


class TestBreakerInterchangeability:
    """Any breaker can drive the database; results stay consistent."""

    @pytest.mark.parametrize(
        "breaker",
        [
            InterpolationBreaker(0.5),
            SlidingWindowBreaker(0.5, window=8, degree=1),
            DynamicProgrammingBreaker(segment_penalty=0.5, error_weight=2.0),
        ],
        ids=["interpolation", "online", "dp"],
    )
    def test_goalpost_found_by_good_breakers(self, breaker):
        db = SequenceDatabase(breaker=breaker)
        db.insert(goalpost_fever(noise=0.0))
        matches = db.query(PeakCountQuery(2, count_tolerance=0))
        assert len(matches) == 1

    def test_bezier_breaker_database(self):
        db = SequenceDatabase(breaker=BezierBreaker(0.8))
        db.insert(goalpost_fever(noise=0.0))
        assert db.peak_count_of(0) == 2

    def test_interpolation_beats_regression_as_breaker(self):
        """The paper's Section 5.1 finding, reproduced: the endpoint
        interpolation instantiation "is simpler and produces better
        results" than regression — fewer segments at the same epsilon
        and clean breaks at the extrema (regression tends to fragment
        and smear peak flanks into flat segments)."""
        seq = goalpost_fever(noise=0.0)
        interp = InterpolationBreaker(0.5).break_indices(seq)
        regress = RegressionBreaker(0.5).break_indices(seq)
        assert len(interp) < len(regress)
        from repro.segmentation import fragmentation_ratio

        assert fragmentation_ratio(interp) <= fragmentation_ratio(regress)


class TestPreprocessingPipeline:
    """Paper Section 7: filter -> normalize -> (compress) -> break."""

    def test_smoothing_then_breaking_reduces_segments(self):
        noisy = goalpost_fever(noise=0.6, seed=2)
        breaker = InterpolationBreaker(0.5)
        direct = breaker.break_indices(noisy)
        smoothed = breaker.break_indices(moving_average(noisy, 3))
        assert len(smoothed) <= len(direct)

    def test_normalized_database_matches_unnormalized_patterns(self):
        raw = goalpost_fever(noise=0.0)
        normalized = znormalize(raw)
        db = SequenceDatabase(breaker=InterpolationBreaker(0.1))
        db.insert(normalized)
        assert db.peak_count_of(0) == 2

    def test_wavelet_compressed_sequence_keeps_query_answer(self):
        seq = goalpost_fever(noise=0.0, n_points=48)
        recon = compress_wavelet(seq, keep_fraction=0.3, wavelet="db4").reconstruct()
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(seq.with_name("orig"))
        db.insert(recon.with_name("compressed"))
        names = {m.name for m in db.query(PatternQuery(GOALPOST))}
        assert names == {"orig", "compressed"}


class TestNoiseToleranceBoundary:
    def test_noise_below_epsilon_harmless(self):
        base = goalpost_fever(noise=0.0)
        noisy = BoundedNoise(0.2, seed=3)(base)
        rep = InterpolationBreaker(0.5).represent(noisy, curve_kind="regression")
        assert count_peaks(rep, theta=0.05) == 2

    def test_noise_far_above_epsilon_destroys_pattern(self):
        base = goalpost_fever(noise=0.0)
        wrecked = BoundedNoise(6.0, seed=3)(base)
        rep = InterpolationBreaker(0.5).represent(wrecked, curve_kind="regression")
        assert count_peaks(rep, theta=0.05) != 2


class TestOtherDomains:
    def test_seismic_burst_query(self):
        seq, events = seismic_sequence(n_points=1500, event_positions=[700], seed=5)
        db = SequenceDatabase(breaker=InterpolationBreaker(3.0), theta=1.0)
        db.insert(seq)
        # "Sudden vigorous activity": a very steep rise exists.
        matches = db.query(SteepnessQuery(5.0))
        assert len(matches) == 1

    def test_quiet_seismogram_rejected(self):
        quiet, __ = seismic_sequence(n_points=1500, event_positions=[], seed=6)
        db = SequenceDatabase(breaker=InterpolationBreaker(3.0), theta=1.0)
        db.insert(quiet)
        assert db.query(SteepnessQuery(5.0)) == []

    def test_stock_rise_drop_rise(self):
        seq = stock_sequence(
            n_points=90,
            regimes=[(30, 0.8), (30, -0.8), (30, 0.8)],
            volatility=0.05,
            seed=7,
        )
        db = SequenceDatabase(breaker=InterpolationBreaker(2.0), theta=0.1)
        db.insert(seq)
        matches = db.query(PatternQuery("+ - +"))
        assert len(matches) == 1


class TestScaleSmoke:
    def test_hundred_sequence_corpus(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        corpus = fever_corpus(n_two_peak=40, n_one_peak=30, n_three_peak=30)
        db.insert_all(corpus)
        matches = db.query(PatternQuery(GOALPOST))
        expected = {s.name for s in corpus if "2p" in s.name}
        found = {m.name for m in matches}
        # Noise can occasionally distort a curve; demand high agreement.
        missed = expected - found
        spurious = found - expected
        assert len(missed) <= 2, f"missed: {missed}"
        assert len(spurious) <= 2, f"spurious: {spurious}"
