"""Integration tests encoding the paper's headline claims.

Each test corresponds to a claim in the evaluation narrative of
Shatkay & Zdonik (ICDE 1996); the benchmark suite prints the same
results as tables, and these tests pin the qualitative shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dft import dominant_frequency
from repro.baselines.euclidean import EpsilonMatcher
from repro.core.features import count_peaks, rr_intervals
from repro.query import IntervalQuery, PatternQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import (
    figure3_sequence,
    figure5_variants,
    figure9_pair,
    goalpost_fever,
)

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


class TestGeneralizedVsValueBased:
    """Section 2 + Figures 3-5: transformations defeat value matching but
    remain exact matches for the feature-based query."""

    @pytest.fixture
    def exemplar(self):
        return figure3_sequence()

    def test_value_based_rejects_every_variant(self, exemplar):
        matcher = EpsilonMatcher(exemplar, epsilon=1.0, align="time")
        rejected = [
            label for label, __, v in figure5_variants(exemplar) if not matcher.matches(v)
        ]
        assert len(rejected) == 6

    def test_feature_based_accepts_every_variant_exactly(self, exemplar):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        db.insert(exemplar)
        for __, ___, variant in figure5_variants(exemplar):
            db.insert(variant)
        matches = db.query(PatternQuery(GOALPOST))
        assert len(matches) == 7  # exemplar + all six variants
        assert all(m.is_exact for m in matches)

    def test_dft_main_frequency_blind_to_dilation(self, exemplar):
        """Section 3: "none of the sequences of Figure 5 matches the
        sequence given in Figure 3 if main frequencies are compared"."""
        base_frequency = dominant_frequency(exemplar)
        dilated = [v for label, __, v in figure5_variants(exemplar) if label == "dilation"][0]
        contracted = [v for label, __, v in figure5_variants(exemplar) if label == "contraction"][0]
        assert dominant_frequency(dilated) == pytest.approx(base_frequency / 2.0, rel=0.15)
        assert dominant_frequency(contracted) == pytest.approx(base_frequency * 2.0, rel=0.15)


class TestGoalpostQueryPipeline:
    """Section 4.4: the full divide-and-conquer pipeline on the fever query."""

    def test_breaking_at_extrema_gives_alternating_slopes(self):
        seq = goalpost_fever(noise=0.0)
        rep = InterpolationBreaker(0.5).represent(seq, curve_kind="regression")
        collapsed = rep.symbol_string(theta=0.05, collapse_runs=True)
        assert collapsed.count("+") == 2
        assert count_peaks(rep, theta=0.05) == 2

    def test_noisy_sequences_still_classified(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        for seed in range(5):
            db.insert(goalpost_fever(noise=0.15, seed=seed, name=f"g{seed}"))
        matches = db.query(PatternQuery(GOALPOST))
        assert len(matches) == 5


class TestECGPipeline:
    """Section 5.2: ECG breaking, Table 1, R-R intervals, Figure 10 index."""

    @pytest.fixture
    def db(self):
        db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
        top, bottom = figure9_pair()
        db.insert(top)
        db.insert(bottom)
        return db

    def test_rr_sequences_match_generator(self, db):
        assert db.rr_intervals_of(0).tolist() == [135.0, 175.0]
        assert db.rr_intervals_of(1).tolist() == [115.0, 135.0, 120.0]

    def test_peak_table_rows_per_peak(self, db):
        rows = db.peak_table_of(0)
        assert len(rows) == 3  # three R peaks in the top ECG
        for row in rows:
            # Rising slopes are steeply positive, descending steeply negative,
            # as in the paper's Table 1 (21.3 vs -14.8 etc.).
            assert "x" in row.rising_equation
            assert row.rise_end[1] > row.rise_start[1]
            assert row.descent_start[1] > row.descent_end[1]

    def test_interval_query_through_btree(self, db):
        hits = {m.name for m in db.query(IntervalQuery(135.0, 5.0))}
        assert hits == {"ecg-top", "ecg-bottom"}
        only_top = {m.name for m in db.query(IntervalQuery(175.0, 5.0))}
        assert only_top == {"ecg-top"}

    def test_paper_example_rr_query(self, db):
        """The paper's worked example: n=135, delta=5 follows the B-tree
        to posting buckets 130-140."""
        index_hits = db.rr_index.sequences_near(135.0, 5.0)
        scan_hits = db.scan_rr(135.0, 5.0)
        assert index_hits == scan_hits == [0, 1]

    def test_compression_factor_shape(self, db):
        """500-point ECGs -> tens of segments; paper-convention factor in
        the 4-10x band (the paper reports ~8x on its smoother data)."""
        report = db.storage_report()
        segments_per_ecg = report["total_segments"] / report["sequences"]
        assert 10 <= segments_per_ecg <= 45
        assert 3.0 <= report["paper_convention_compression"] <= 12.0


class TestRepresentationFidelity:
    def test_reconstruction_within_epsilon(self):
        top, __ = figure9_pair()
        rep = InterpolationBreaker(10.0).represent(top, curve_kind="interpolation")
        assert rep.reconstruction_error(top) <= 10.0 + 1e-9

    def test_regression_representation_close(self):
        top, __ = figure9_pair()
        rep = InterpolationBreaker(10.0).represent(top, curve_kind="regression")
        # Regression lines may exceed the breaker tolerance slightly but
        # stay in its vicinity.
        assert rep.reconstruction_error(top) <= 25.0

    def test_rr_intervals_survive_representation_roundtrip(self):
        from repro.storage.serialization import decode_representation, encode_representation

        top, __ = figure9_pair()
        rep = InterpolationBreaker(10.0).represent(top, curve_kind="regression")
        decoded = decode_representation(encode_representation(rep))
        assert np.array_equal(rr_intervals(decoded, 5.0), rr_intervals(rep, 5.0))
