"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import Sequence
from repro.segmentation import InterpolationBreaker
from repro.workloads import figure9_pair, goalpost_fever


@pytest.fixture
def two_peak_sequence() -> Sequence:
    """A clean 49-point, two-peak fever curve."""
    return goalpost_fever()


@pytest.fixture
def ramp_sequence() -> Sequence:
    """A noiseless straight ramp — one segment under any tolerance."""
    return Sequence.from_values(np.linspace(0.0, 10.0, 21), name="ramp")


@pytest.fixture
def triangle_sequence() -> Sequence:
    """Rise then fall with a single apex at index 10."""
    values = np.concatenate([np.linspace(0.0, 10.0, 11), np.linspace(9.0, 0.0, 10)])
    return Sequence.from_values(values, name="triangle")


@pytest.fixture
def noisy_sine() -> Sequence:
    rng = np.random.default_rng(42)
    t = np.arange(128, dtype=float)
    return Sequence(t, np.sin(2 * np.pi * t / 32) + rng.normal(0, 0.05, 128), name="sine")


@pytest.fixture
def ecg_pair():
    """The Figure-9-shaped synthetic ECG pair (top, bottom)."""
    return figure9_pair()


@pytest.fixture
def fever_representation(two_peak_sequence):
    """The paper's pipeline on the fever curve: break with interpolation,
    represent with regression."""
    return InterpolationBreaker(epsilon=0.5).represent(two_peak_sequence, curve_kind="regression")
