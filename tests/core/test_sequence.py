"""Tests for the Sequence data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence


class TestConstruction:
    def test_from_arrays(self):
        seq = Sequence([0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        assert len(seq) == 3
        assert seq.start_time == 0.0
        assert seq.end_time == 2.0

    def test_from_values_uniform_grid(self):
        seq = Sequence.from_values([1.0, 2.0, 3.0], start=10.0, step=0.5)
        assert list(seq.times) == [10.0, 10.5, 11.0]

    def test_from_pairs(self):
        seq = Sequence.from_pairs([(0.0, 1.0), (1.0, 4.0)])
        assert seq[1] == (1.0, 4.0)

    def test_from_pairs_empty_rejected(self):
        with pytest.raises(SequenceError):
            Sequence.from_pairs([])

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            Sequence([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SequenceError):
            Sequence([0.0, 1.0], [1.0])

    def test_nan_rejected(self):
        with pytest.raises(SequenceError):
            Sequence([0.0, 1.0], [1.0, float("nan")])

    def test_infinite_time_rejected(self):
        with pytest.raises(SequenceError):
            Sequence([0.0, float("inf")], [1.0, 2.0])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(SequenceError):
            Sequence([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(SequenceError):
            Sequence([1.0, 0.0], [1.0, 2.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(SequenceError):
            Sequence(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_single_sample_allowed(self):
        seq = Sequence([3.0], [4.0])
        assert len(seq) == 1
        assert seq.duration == 0.0


class TestImmutability:
    def test_times_not_writeable(self):
        seq = Sequence([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            seq.times[0] = 99.0

    def test_values_not_writeable(self):
        seq = Sequence([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            seq.values[0] = 99.0

    def test_source_array_mutation_does_not_leak(self):
        times = np.array([0.0, 1.0])
        values = np.array([1.0, 2.0])
        seq = Sequence(times, values)
        times[0] = -5.0
        values[0] = -5.0
        assert seq.times[0] == 0.0
        assert seq.values[0] == 1.0


class TestEqualityAndHash:
    def test_equal_sequences(self):
        a = Sequence([0.0, 1.0], [1.0, 2.0])
        b = Sequence([0.0, 1.0], [1.0, 2.0], name="other-name")
        assert a == b  # names do not participate in equality
        assert hash(a) == hash(b)

    def test_unequal_values(self):
        a = Sequence([0.0, 1.0], [1.0, 2.0])
        b = Sequence([0.0, 1.0], [1.0, 3.0])
        assert a != b

    def test_unequal_lengths(self):
        a = Sequence([0.0, 1.0], [1.0, 2.0])
        b = Sequence([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert a != b

    def test_non_sequence_comparison(self):
        assert Sequence([0.0], [1.0]) != "not a sequence"


class TestAccessors:
    def test_iteration_yields_pairs(self):
        seq = Sequence([0.0, 1.0], [5.0, 6.0])
        assert list(seq) == [(0.0, 5.0), (1.0, 6.0)]

    def test_slice_returns_sequence(self):
        seq = Sequence.from_values([1.0, 2.0, 3.0, 4.0])
        sliced = seq[1:3]
        assert isinstance(sliced, Sequence)
        assert list(sliced.values) == [2.0, 3.0]

    def test_empty_slice_rejected(self):
        seq = Sequence.from_values([1.0, 2.0])
        with pytest.raises(SequenceError):
            seq[5:9]

    def test_amplitude_range(self):
        seq = Sequence.from_values([3.0, -1.0, 7.0])
        assert seq.amplitude_range() == (-1.0, 7.0)

    def test_mean_and_variance(self):
        seq = Sequence.from_values([1.0, 2.0, 3.0])
        assert seq.mean() == pytest.approx(2.0)
        assert seq.variance() == pytest.approx(2.0 / 3.0)

    def test_repr_contains_name(self):
        seq = Sequence.from_values([1.0, 2.0], name="mylabel")
        assert "mylabel" in repr(seq)


class TestUniformity:
    def test_uniform_grid_detected(self):
        assert Sequence.from_values([1.0, 2.0, 3.0]).is_uniform()

    def test_non_uniform_grid_detected(self):
        seq = Sequence([0.0, 1.0, 3.0], [1.0, 2.0, 3.0])
        assert not seq.is_uniform()

    def test_sampling_step(self):
        assert Sequence.from_values([1.0, 2.0], step=0.25).sampling_step() == 0.25

    def test_sampling_step_non_uniform_rejected(self):
        seq = Sequence([0.0, 1.0, 3.0], [1.0, 2.0, 3.0])
        with pytest.raises(SequenceError):
            seq.sampling_step()

    def test_sampling_step_single_point_rejected(self):
        with pytest.raises(SequenceError):
            Sequence([0.0], [1.0]).sampling_step()


class TestOperations:
    def test_slice_time(self):
        seq = Sequence.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
        window = seq.slice_time(1.0, 3.0)
        assert list(window.values) == [2.0, 3.0, 4.0]

    def test_slice_time_empty_window_rejected(self):
        seq = Sequence.from_values([1.0, 2.0])
        with pytest.raises(SequenceError):
            seq.slice_time(10.0, 20.0)

    def test_subsequence_inclusive(self):
        seq = Sequence.from_values([1.0, 2.0, 3.0, 4.0])
        sub = seq.subsequence(1, 2)
        assert list(sub.values) == [2.0, 3.0]

    def test_subsequence_bad_window_rejected(self):
        seq = Sequence.from_values([1.0, 2.0])
        with pytest.raises(SequenceError):
            seq.subsequence(1, 0)
        with pytest.raises(SequenceError):
            seq.subsequence(0, 5)
        with pytest.raises(SequenceError):
            seq.subsequence(-1, 1)

    def test_shifted_to_origin(self):
        seq = Sequence([5.0, 6.0, 7.0], [1.0, 2.0, 3.0])
        shifted = seq.shifted_to_origin()
        assert shifted.start_time == 0.0
        assert list(shifted.values) == [1.0, 2.0, 3.0]

    def test_concatenate(self):
        a = Sequence([0.0, 1.0], [1.0, 2.0])
        b = Sequence([2.0, 3.0], [3.0, 4.0])
        joined = a.concatenate(b)
        assert len(joined) == 4
        assert joined.end_time == 3.0

    def test_concatenate_overlap_rejected(self):
        a = Sequence([0.0, 2.0], [1.0, 2.0])
        b = Sequence([1.0, 3.0], [3.0, 4.0])
        with pytest.raises(SequenceError):
            a.concatenate(b)

    def test_insert_keeps_order(self):
        seq = Sequence([0.0, 2.0], [1.0, 3.0])
        inserted = seq.insert(1.0, 2.0)
        assert list(inserted.times) == [0.0, 1.0, 2.0]
        assert list(inserted.values) == [1.0, 2.0, 3.0]

    def test_insert_duplicate_time_rejected(self):
        seq = Sequence([0.0, 2.0], [1.0, 3.0])
        with pytest.raises(SequenceError):
            seq.insert(2.0, 9.0)

    def test_interpolate_at_midpoint(self):
        seq = Sequence([0.0, 2.0], [0.0, 4.0])
        assert seq.interpolate_at(1.0) == pytest.approx(2.0)

    def test_resample_preserves_endpoints(self):
        seq = Sequence.from_values([0.0, 1.0, 4.0, 9.0])
        resampled = seq.resample(7)
        assert len(resampled) == 7
        assert resampled.values[0] == pytest.approx(0.0)
        assert resampled.values[-1] == pytest.approx(9.0)

    def test_resample_too_few_points_rejected(self):
        with pytest.raises(SequenceError):
            Sequence.from_values([1.0, 2.0]).resample(1)

    def test_with_name(self):
        seq = Sequence.from_values([1.0, 2.0]).with_name("renamed")
        assert seq.name == "renamed"


class TestFromBlock:
    """Zero-copy batch construction on a shared grid."""

    def test_rows_equal_from_values(self):
        block = np.array([[1.0, 2.0, 0.5], [0.0, -1.0, 3.0]])
        batch = Sequence.from_block(block, names=["a", "b"])
        assert len(batch) == 2
        for row, name, sequence in zip(block, ["a", "b"], batch):
            assert sequence == Sequence.from_values(row, name=name)
            assert sequence.name == name

    def test_views_share_the_grid_and_are_frozen(self):
        batch = Sequence.from_block([[1.0, 2.0], [3.0, 4.0]])
        assert batch[0].times is batch[1].times
        assert not batch[0].values.flags.writeable
        assert not batch[0].times.flags.writeable

    def test_source_block_mutation_cannot_leak_in(self):
        source = np.array([[1.0, 2.0]])
        (sequence,) = Sequence.from_block(source)
        source[0, 0] = 99.0
        assert sequence.values[0] == 1.0

    def test_validation(self):
        with pytest.raises(SequenceError):
            Sequence.from_block(np.ones((2, 0)))
        with pytest.raises(SequenceError):
            Sequence.from_block([[np.inf, 1.0]])
        with pytest.raises(SequenceError):
            Sequence.from_block([[1.0, 2.0]], times=[1.0])
        with pytest.raises(SequenceError):
            Sequence.from_block([[1.0, 2.0]], times=[2.0, 1.0])
        with pytest.raises(SequenceError):
            Sequence.from_block([[1.0]], names=[])
