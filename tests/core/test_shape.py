"""Tests for shape signatures (exemplar-side of generalized queries)."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.shape import ShapeSignature, shape_signature
from repro.core.transformations import AmplitudeScale, AmplitudeShift, TimeScale, TimeShift
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever, k_peak_sequence


def signature_of(seq, theta=0.05, epsilon=0.5):
    rep = InterpolationBreaker(epsilon).represent(seq, curve_kind="regression")
    return shape_signature(rep, theta)


class TestConstruction:
    def test_two_peak_symbols(self):
        sig = signature_of(goalpost_fever(noise=0.0))
        assert sig.symbols.count("+") == 2
        assert sig.symbols.count("-") == 2

    def test_profiles_normalized(self):
        sig = signature_of(goalpost_fever(noise=0.0))
        assert sum(sig.duration_profile) == pytest.approx(1.0)
        assert sum(sig.amplitude_profile) == pytest.approx(1.0)
        assert len(sig.symbols) == len(sig.duration_profile) == len(sig.amplitude_profile)

    def test_runs_collapsed(self):
        sig = signature_of(goalpost_fever(noise=0.0))
        for a, b in zip(sig.symbols, sig.symbols[1:]):
            assert a != b  # no adjacent duplicates after collapsing

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(QueryError):
            ShapeSignature("+-", (1.0,), (0.5, 0.5))


class TestInvariance:
    """The signature is the paper's equivalence-class fingerprint: exact
    under shift / scale / dilation / contraction.

    Two provisos, both the paper's own: slope *sign* is the
    scale-invariant classifier (theta = 0 here; a fixed positive theta
    is a unit-bearing threshold that time scaling legitimately crosses),
    and amplitude scaling by k must scale the breaking tolerance by k
    (or sequences are normalized first — Section 7)."""

    @pytest.mark.parametrize(
        "transform,epsilon",
        [
            (TimeShift(4.0), 0.5),
            (AmplitudeShift(-7.0), 0.5),
            (AmplitudeScale(2.0, baseline=98.0), 1.0),  # eps scaled with amplitude
            (TimeScale(2.0), 0.5),
            (TimeScale(0.5), 0.5),
        ],
        ids=["tshift", "ashift", "ascale", "dilate", "contract"],
    )
    def test_exact_invariance(self, transform, epsilon):
        base = signature_of(goalpost_fever(noise=0.0), theta=0.0, epsilon=0.5)
        moved = signature_of(transform(goalpost_fever(noise=0.0)), theta=0.0, epsilon=epsilon)
        assert base.matches_symbols(moved)
        assert base.duration_deviation(moved) == pytest.approx(0.0, abs=1e-9)
        assert base.amplitude_deviation(moved) == pytest.approx(0.0, abs=1e-9)

    def test_normalization_restores_invariance_at_fixed_epsilon(self):
        """The paper's Section 7 route: z-normalize first, then one
        epsilon fits all amplitude scalings."""
        from repro.preprocessing import znormalize

        base = signature_of(znormalize(goalpost_fever(noise=0.0)), theta=0.0, epsilon=0.1)
        scaled = AmplitudeScale(3.7, baseline=98.0)(goalpost_fever(noise=0.0))
        moved = signature_of(znormalize(scaled), theta=0.0, epsilon=0.1)
        assert base.matches_symbols(moved)
        assert base.duration_deviation(moved) == pytest.approx(0.0, abs=1e-6)

    def test_different_structure_not_comparable(self):
        two = signature_of(k_peak_sequence([6.0, 18.0], noise=0.0))
        three = signature_of(k_peak_sequence([4.0, 12.0, 20.0], noise=0.0))
        assert not two.matches_symbols(three)
        with pytest.raises(QueryError):
            two.duration_deviation(three)

    def test_same_structure_different_proportions(self):
        narrow = signature_of(k_peak_sequence([6.0, 18.0], widths=[1.0, 1.0], noise=0.0))
        wide = signature_of(k_peak_sequence([6.0, 18.0], widths=[2.5, 2.5], noise=0.0))
        if narrow.matches_symbols(wide):
            assert narrow.duration_deviation(wide) > 0.0


class TestDegenerateShapes:
    def test_flat_sequence(self):
        from repro.core.sequence import Sequence
        import numpy as np

        rep = InterpolationBreaker(0.5).represent(
            Sequence.from_values(np.full(20, 3.0)), curve_kind="regression"
        )
        sig = shape_signature(rep, 0.05)
        assert sig.symbols == "0"
        assert sig.amplitude_profile == (0.0,)

    def test_monotone_ramp(self):
        from repro.core.sequence import Sequence
        import numpy as np

        rep = InterpolationBreaker(0.5).represent(
            Sequence.from_values(np.linspace(0, 10, 20)), curve_kind="regression"
        )
        sig = shape_signature(rep, 0.05)
        assert sig.symbols == "+"
        assert sig.duration_profile == (1.0,)
