"""Tests for per-dimension tolerances and match grading."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.tolerance import DimensionDeviation, MatchGrade, Tolerance, grade_deviations


class TestTolerance:
    def test_default_metric_is_absolute_difference(self):
        tol = Tolerance("peak_count", 1.0)
        dev = tol.deviation(2.0, 3.0)
        assert dev.amount == 1.0
        assert dev.dimension == "peak_count"
        assert dev.bound == 1.0

    def test_custom_metric(self):
        tol = Tolerance("ratio", 0.5, metric=lambda a, b: abs(a - b) / max(abs(a), 1e-9))
        dev = tol.deviation(10.0, 11.0)
        assert dev.amount == pytest.approx(0.1)

    def test_negative_bound_rejected(self):
        with pytest.raises(QueryError):
            Tolerance("x", -1.0)


class TestDimensionDeviation:
    def test_within(self):
        assert DimensionDeviation("d", 0.5, 1.0).within
        assert not DimensionDeviation("d", 1.5, 1.0).within

    def test_boundary_is_within(self):
        assert DimensionDeviation("d", 1.0, 1.0).within

    def test_exact(self):
        assert DimensionDeviation("d", 0.0, 1.0).exact
        assert not DimensionDeviation("d", 0.1, 1.0).exact


class TestGrading:
    def test_all_zero_is_exact(self):
        devs = [DimensionDeviation("a", 0.0, 1.0), DimensionDeviation("b", 0.0, 0.0)]
        assert grade_deviations(devs) is MatchGrade.EXACT

    def test_within_tolerance_is_approximate(self):
        devs = [DimensionDeviation("a", 0.5, 1.0)]
        assert grade_deviations(devs) is MatchGrade.APPROXIMATE

    def test_any_violation_rejects(self):
        devs = [DimensionDeviation("a", 0.0, 1.0), DimensionDeviation("b", 2.0, 1.0)]
        assert grade_deviations(devs) is MatchGrade.REJECT

    def test_empty_is_exact(self):
        # No constrained dimensions: trivially a member of the class.
        assert grade_deviations([]) is MatchGrade.EXACT

    def test_mixed_zero_and_small(self):
        devs = [DimensionDeviation("a", 0.0, 1.0), DimensionDeviation("b", 0.2, 1.0)]
        assert grade_deviations(devs) is MatchGrade.APPROXIMATE
