"""find_peaks_many vs the scalar peak walker: byte parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import find_peaks, find_peaks_many
from repro.core.sequence import Sequence
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus


@pytest.fixture(scope="module")
def representations():
    corpus = (
        fever_corpus(n_two_peak=8, n_one_peak=6, n_three_peak=6)
        + ecg_corpus(n_sequences=4, n_points=400)
        + [
            Sequence.from_values([1.0]),
            Sequence.from_values(np.zeros(30)),
            Sequence.from_values(np.linspace(0, 5, 20)),  # pure rise, no peak
            Sequence.from_values(np.concatenate([np.linspace(0, 5, 8), np.full(6, 5.0), np.linspace(5, 0, 8)])),  # plateau apex
        ]
    )
    return InterpolationBreaker(0.3).represent_many(corpus, curve_kind="regression")


@pytest.mark.parametrize("theta", [0.0, 0.05, 0.5])
@pytest.mark.parametrize("skip_flats", [True, False])
def test_batch_matches_scalar(representations, theta, skip_flats):
    batch = find_peaks_many(representations, theta, skip_flats=skip_flats)
    assert len(batch) == len(representations)
    for representation, (times, amplitudes) in zip(representations, batch):
        peaks = find_peaks(representation, theta, skip_flats=skip_flats)
        assert times.tolist() == [p.time for p in peaks]
        assert amplitudes.tolist() == [p.amplitude for p in peaks]


def test_intervals_match_scalar_diff(representations):
    theta = 0.05
    for representation, (times, __) in zip(
        representations, find_peaks_many(representations, theta)
    ):
        scalar_times = np.asarray(
            [p.time for p in find_peaks(representation, theta)], dtype=float
        )
        assert np.array_equal(np.diff(times), np.diff(scalar_times))


def test_empty_batch():
    assert find_peaks_many([]) == []
