"""Edge-case coverage for public API corners not hit elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SegmentationError
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.sequence import Sequence
from repro.core.tolerance import DimensionDeviation, MatchGrade
from repro.functions.linear import LinearFunction
from repro.functions.polynomial import PolynomialFunction
from repro.query.results import QueryMatch
from repro.segmentation.base import fragmentation_ratio, is_partition


class TestFunctionOrdering:
    def test_cross_family_order_by_tag(self):
        line = LinearFunction(1.0, 0.0)
        poly = PolynomialFunction((1.0, 0.0, 0.0))
        # "linear" < "poly" alphabetically.
        assert line < poly
        assert not poly < line

    def test_sample_matches_call(self):
        line = LinearFunction(2.0, -1.0)
        times = [0.0, 0.5, 1.0]
        assert np.allclose(line.sample(times), [line(t) for t in times])

    def test_equality_cross_family_false(self):
        assert LinearFunction(1.0, 0.0) != PolynomialFunction((1.0, 0.0))


class TestPartitionHelpers:
    def test_empty_boundaries_not_partition(self):
        assert not is_partition([], 5)

    def test_gap_not_partition(self):
        assert not is_partition([(0, 1), (3, 4)], 5)

    def test_overlap_not_partition(self):
        assert not is_partition([(0, 2), (2, 4)], 5)

    def test_reversed_window_not_partition(self):
        assert not is_partition([(0, 4), (5, 4)], 5)

    def test_fragmentation_empty_rejected(self):
        with pytest.raises(SegmentationError):
            fragmentation_ratio([])

    def test_fragmentation_all_short(self):
        assert fragmentation_ratio([(0, 0), (1, 2)]) == 1.0


class TestQueryMatchSorting:
    def test_exact_sorts_before_approximate(self):
        exact = QueryMatch(5, "e", MatchGrade.EXACT, (DimensionDeviation("d", 0.0, 1.0),))
        approx = QueryMatch(1, "a", MatchGrade.APPROXIMATE, (DimensionDeviation("d", 0.5, 1.0),))
        assert sorted([approx, exact], key=QueryMatch.sort_key)[0] is exact

    def test_smaller_total_deviation_first(self):
        close = QueryMatch(2, "c", MatchGrade.APPROXIMATE, (DimensionDeviation("d", 0.1, 1.0),))
        far = QueryMatch(1, "f", MatchGrade.APPROXIMATE, (DimensionDeviation("d", 0.9, 1.0),))
        assert sorted([far, close], key=QueryMatch.sort_key)[0] is close

    def test_id_breaks_ties(self):
        a = QueryMatch(1, "a", MatchGrade.EXACT)
        b = QueryMatch(2, "b", MatchGrade.EXACT)
        assert sorted([b, a], key=QueryMatch.sort_key) == [a, b]

    def test_deviation_in_missing_dimension(self):
        match = QueryMatch(0, "x", MatchGrade.EXACT, (DimensionDeviation("d", 0.0, 1.0),))
        assert match.deviation_in("other") is None


class TestRepresentationGaps:
    def test_segment_at_gap_resolves_to_earlier(self):
        # Two segments with a one-sample gap in between (breakpoint owned
        # by the right segment leaves times (10, 11) uncovered).
        seq = Sequence.from_values(np.concatenate([np.linspace(0, 10, 11), np.linspace(9, 0, 10)]))
        rep = FunctionSeriesRepresentation.from_breakpoints(
            seq, [(0, 9), (11, 20)], curve_kind="interpolation"
        )
        segment = rep.segment_at(10.0)  # inside the gap
        assert segment.start_index == 0

    def test_interpolate_in_gap_clamps(self):
        seq = Sequence.from_values(np.concatenate([np.linspace(0, 10, 11), np.linspace(9, 0, 10)]))
        rep = FunctionSeriesRepresentation.from_breakpoints(
            seq, [(0, 9), (11, 20)], curve_kind="interpolation"
        )
        value = rep.interpolate_at(10.5)
        assert np.isfinite(value)


class TestSequenceReprAndEdges:
    def test_repr_without_name(self):
        assert "Sequence(" in repr(Sequence.from_values([1.0, 2.0]))

    def test_getitem_negative_index(self):
        seq = Sequence.from_values([1.0, 2.0, 3.0])
        assert seq[-1] == (2.0, 3.0)

    def test_variance_single_point(self):
        assert Sequence([0.0], [5.0]).variance() == 0.0
