"""Tests for feature extraction (peaks, peak tables, R-R intervals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    count_peaks,
    count_peaks_in_symbols,
    find_peaks,
    peak_table,
    raw_peak_indices,
    rr_intervals,
)
from repro.core.sequence import Sequence
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever, k_peak_sequence


def represent(seq, epsilon=0.5):
    return InterpolationBreaker(epsilon).represent(seq, curve_kind="regression")


class TestFindPeaks:
    def test_two_peak_fever(self, fever_representation):
        peaks = find_peaks(fever_representation, theta=0.05)
        assert len(peaks) == 2
        # Generator places peaks at hours 6 and 18.
        assert peaks[0].time == pytest.approx(6.0, abs=1.0)
        assert peaks[1].time == pytest.approx(18.0, abs=1.0)

    def test_apex_is_higher_endpoint(self, fever_representation):
        for peak in find_peaks(fever_representation, theta=0.05):
            rise_end = peak.rising.end_point[1]
            fall_start = peak.descending.start_point[1]
            assert peak.amplitude == max(rise_end, fall_start)

    def test_monotone_sequence_has_no_peaks(self):
        seq = Sequence.from_values(np.linspace(0, 10, 30))
        assert count_peaks(represent(seq)) == 0

    def test_single_triangle_is_one_peak(self, triangle_sequence):
        assert count_peaks(represent(triangle_sequence, epsilon=0.2)) == 1

    def test_k_peaks_recovered(self):
        for k, centers in [(1, [12.0]), (2, [6.0, 18.0]), (3, [4.0, 12.0, 20.0])]:
            seq = k_peak_sequence(centers, noise=0.0)
            assert count_peaks(represent(seq), theta=0.05) == k

    def test_plateau_between_rise_and_fall_counts_once(self):
        # rise, flat plateau, fall: one logical peak.
        values = np.concatenate(
            [np.linspace(0, 10, 11), np.full(8, 10.0), np.linspace(10, 0, 11)]
        )
        seq = Sequence.from_values(values)
        rep = represent(seq, epsilon=0.3)
        assert count_peaks(rep, theta=0.05) == 1

    def test_skip_flats_disabled_breaks_plateau_peak(self):
        values = np.concatenate(
            [np.linspace(0, 10, 11), np.full(8, 10.0), np.linspace(10, 0, 11)]
        )
        rep = represent(Sequence.from_values(values), epsilon=0.3)
        symbols = rep.symbol_string(theta=0.05)
        if "0" in symbols:  # plateau produced a flat segment
            assert len(find_peaks(rep, theta=0.05, skip_flats=False)) == 0

    def test_consecutive_rises_coalesce(self):
        # A convex rise split into two + segments, then a fall: one peak.
        values = np.concatenate([np.linspace(0, 3, 10), np.linspace(3.5, 20, 10), np.linspace(19, 0, 12)])
        rep = represent(Sequence.from_values(values), epsilon=0.4)
        assert count_peaks(rep, theta=0.05) == 1


class TestSymbolCounting:
    @pytest.mark.parametrize(
        "symbols,expected",
        [
            ("", 0),
            ("+", 0),  # a rise alone is not a peak
            ("+-", 1),
            ("+-+-", 2),
            ("+0-", 1),  # plateau at the top
            ("0+000-0", 1),
            ("-+-", 1),
            ("++--", 1),
            ("+-+", 1),
            ("0-0", 0),
        ],
    )
    def test_counts(self, symbols, expected):
        assert count_peaks_in_symbols(symbols) == expected

    def test_agrees_with_find_peaks_on_fever(self, fever_representation):
        symbols = fever_representation.symbol_string(theta=0.05)
        assert count_peaks_in_symbols(symbols) == count_peaks(fever_representation, theta=0.05)


class TestPeakTable:
    def test_table_rows_match_peaks(self, fever_representation):
        rows = peak_table(fever_representation, theta=0.05)
        assert len(rows) == 2
        for row in rows:
            # Rising segment precedes the descending one in time.
            assert row.rise_end[0] <= row.descent_start[0]
            assert row.rise_start[0] < row.rise_end[0]
            assert row.descent_start[0] < row.descent_end[0]

    def test_table_row_formatting(self, fever_representation):
        rows = peak_table(fever_representation, theta=0.05)
        line = rows[0].format()
        assert "(" in line and ")" in line

    def test_equations_present(self, fever_representation):
        rows = peak_table(fever_representation, theta=0.05)
        assert all("x" in row.rising_equation for row in rows)


class TestRRIntervals:
    def test_two_peaks_one_interval(self, fever_representation):
        intervals = rr_intervals(fever_representation, theta=0.05)
        assert len(intervals) == 1
        assert intervals[0] == pytest.approx(12.0, abs=1.5)

    def test_no_peaks_no_intervals(self):
        seq = Sequence.from_values(np.linspace(0, 5, 20))
        assert len(rr_intervals(represent(seq))) == 0

    def test_intervals_positive(self, ecg_pair):
        top, __ = ecg_pair
        rep = InterpolationBreaker(10.0).represent(top, curve_kind="regression")
        intervals = rr_intervals(rep, theta=2.0)
        assert (intervals > 0).all()


class TestRawPeakIndices:
    def test_simple_triangle(self, triangle_sequence):
        assert raw_peak_indices(triangle_sequence, prominence=2.0) == [10]

    def test_prominence_filters_wiggles(self):
        t = np.arange(60, dtype=float)
        base = 10 * np.exp(-0.5 * ((t - 30) / 6) ** 2)
        wiggle = 0.3 * np.sin(t)
        seq = Sequence(t, base + wiggle)
        big = raw_peak_indices(seq, prominence=3.0)
        assert len(big) == 1
        assert abs(big[0] - 30) <= 2
        small = raw_peak_indices(seq, prominence=0.01)
        assert len(small) > 1

    def test_goalpost_ground_truth(self):
        seq = goalpost_fever(noise=0.0)
        peaks = raw_peak_indices(seq, prominence=2.0)
        assert len(peaks) == 2

    def test_flat_sequence_no_peaks(self):
        seq = Sequence.from_values(np.full(20, 5.0))
        assert raw_peak_indices(seq, prominence=0.1) == []

    def test_plateau_peak_found_once(self):
        values = np.concatenate([np.linspace(0, 5, 6), np.full(4, 5.0), np.linspace(5, 0, 6)])
        peaks = raw_peak_indices(Sequence.from_values(values), prominence=1.0)
        assert len(peaks) == 1
