"""Tests for Segment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.core.segment import Segment
from repro.core.sequence import Sequence
from repro.functions.linear import LinearFunction


def make_segment(slope=1.0, intercept=0.0, start=0, end=4):
    return Segment(
        function=LinearFunction(slope, intercept),
        start_index=start,
        end_index=end,
        start_point=(float(start), slope * start + intercept),
        end_point=(float(end), slope * end + intercept),
    )


class TestConstruction:
    def test_basic(self):
        seg = make_segment()
        assert seg.point_count == 5
        assert seg.duration == 4.0

    def test_reversed_indices_rejected(self):
        with pytest.raises(SequenceError):
            Segment(LinearFunction(1, 0), 4, 2, (4.0, 4.0), (2.0, 2.0))

    def test_reversed_times_rejected(self):
        with pytest.raises(SequenceError):
            Segment(LinearFunction(1, 0), 0, 2, (5.0, 0.0), (2.0, 2.0))

    def test_single_point_segment(self):
        seg = Segment(LinearFunction(0, 3.0), 2, 2, (2.0, 3.0), (2.0, 3.0))
        assert seg.point_count == 1
        assert seg.duration == 0.0


class TestBehaviour:
    def test_mean_slope_linear(self):
        assert make_segment(slope=2.5).mean_slope() == pytest.approx(2.5)

    def test_rising_falling_flat(self):
        assert make_segment(slope=1.0).is_rising()
        assert make_segment(slope=-1.0).is_falling()
        assert make_segment(slope=0.0).is_flat()

    def test_theta_reclassifies(self):
        seg = make_segment(slope=0.05)
        assert seg.is_rising(theta=0.0)
        assert seg.is_flat(theta=0.1)
        assert not seg.is_rising(theta=0.1)

    def test_value_at_inside(self):
        seg = make_segment(slope=2.0, intercept=1.0)
        assert seg.value_at(2.0) == pytest.approx(5.0)

    def test_value_at_outside_rejected(self):
        with pytest.raises(SequenceError):
            make_segment().value_at(100.0)


class TestReconstruction:
    def test_reconstruct_matches_function(self):
        seg = make_segment(slope=3.0, intercept=-1.0)
        recon = seg.reconstruct()
        assert len(recon) == seg.point_count
        expected = 3.0 * recon.times - 1.0
        assert np.allclose(recon.values, expected)

    def test_reconstruct_custom_density(self):
        recon = make_segment().reconstruct(points_per_segment=11)
        assert len(recon) == 11

    def test_max_deviation_from_source(self):
        seq = Sequence.from_values([0.0, 1.0, 2.5, 3.0, 4.0])
        seg = Segment(LinearFunction(1.0, 0.0), 0, 4, (0.0, 0.0), (4.0, 4.0))
        # Worst error is at index 2: |2.5 - 2.0| = 0.5
        assert seg.max_deviation_from(seq) == pytest.approx(0.5)

    def test_describe_contains_equation(self):
        assert "f(t)=" in make_segment().describe()
