"""Tests for FunctionSeriesRepresentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SequenceError
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.sequence import Sequence


def vee_sequence() -> Sequence:
    """Down then up: two clean linear segments."""
    values = np.concatenate([np.linspace(10.0, 0.0, 11), np.linspace(1.0, 10.0, 10)])
    return Sequence.from_values(values, name="vee")


class TestConstruction:
    def test_from_breakpoints(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert len(rep) == 2
        assert rep.source_length == 21
        assert rep.curve_kind == "regression"

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            FunctionSeriesRepresentation([])

    def test_overlapping_segments_rejected(self):
        seq = vee_sequence()
        with pytest.raises(SequenceError):
            FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (10, 20)])

    def test_single_point_window_fits_constant(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 0), (1, 20)])
        assert rep[0].function.parameters()[0] == 0.0  # zero slope

    def test_interpolation_kind(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(
            seq, [(0, 10), (11, 20)], curve_kind="interpolation"
        )
        # Interpolation lines hit the endpoints exactly.
        assert rep[0].value_at(0.0) == pytest.approx(10.0)
        assert rep[0].value_at(10.0) == pytest.approx(0.0)

    def test_refit_changes_kind_not_breaks(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        refit = rep.refit(seq, "interpolation")
        assert refit.curve_kind == "interpolation"
        assert refit.breakpoints() == rep.breakpoints()


class TestGeometry:
    def test_breakpoints(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert rep.breakpoints() == [11]
        assert rep.breakpoint_times() == [11.0]

    def test_segment_at(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert rep.segment_at(5.0).start_index == 0
        assert rep.segment_at(15.0).start_index == 11

    def test_segment_at_outside_rejected(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 20)])
        with pytest.raises(SequenceError):
            rep.segment_at(-1.0)

    def test_container_protocol(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert len(list(iter(rep))) == 2
        assert rep[0].start_index == 0
        assert "segments=2" in repr(rep)


class TestSymbols:
    def test_symbol_string(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert rep.symbol_string() == "-+"

    def test_theta_flattens(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert rep.symbol_string(theta=100.0) == "00"

    def test_collapse_runs(self):
        seq = Sequence.from_values(np.arange(30, dtype=float))
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 9), (10, 19), (20, 29)])
        assert rep.symbol_string() == "+++"
        assert rep.symbol_string(collapse_runs=True) == "+"

    def test_slopes_ordering(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        slopes = rep.slopes()
        assert slopes[0] < 0 < slopes[1]


class TestReconstruction:
    def test_interpolate_at(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(
            seq, [(0, 10), (11, 20)], curve_kind="interpolation"
        )
        assert rep.interpolate_at(5.0) == pytest.approx(5.0)

    def test_reconstruct_close_to_source(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(
            seq, [(0, 10), (11, 20)], curve_kind="interpolation"
        )
        recon = rep.reconstruct()
        assert recon.start_time == seq.start_time
        assert recon.end_time == seq.end_time
        # Linear data reconstructs essentially exactly.
        assert rep.reconstruction_error(seq) < 1e-9

    def test_reconstruction_error_positive_for_lossy_fit(self):
        rng = np.random.default_rng(0)
        seq = Sequence.from_values(rng.normal(0, 1, 40))
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 39)])
        assert rep.reconstruction_error(seq) > 0


class TestStorageAccounting:
    def test_paper_convention(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert rep.parameter_count("paper") == 6  # 3 per segment
        assert rep.compression_ratio("paper") == pytest.approx(21 / 6)

    def test_full_convention_larger(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 10), (11, 20)])
        assert rep.parameter_count("full") > rep.parameter_count("paper")

    def test_unknown_convention_rejected(self):
        seq = vee_sequence()
        rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, 20)])
        with pytest.raises(SequenceError):
            rep.parameter_count("bogus")


class TestSymbolCodecs:
    def test_decode_symbols_round_trip(self):
        from repro.core.representation import classify_slopes, decode_symbols

        slopes = [2.0, 0.01, -3.0, 0.0, 1.5]
        assert decode_symbols(classify_slopes(slopes, 0.05)) == "+0-0+"
        assert decode_symbols(classify_slopes([], 0.05)) == ""

    def test_decode_symbols_rejects_corrupt_codes(self):
        import numpy as np
        import pytest

        from repro.core.errors import SequenceError
        from repro.core.representation import decode_symbols

        with pytest.raises(SequenceError, match="invalid symbol codes"):
            decode_symbols(np.array([-2], dtype=np.int8))
        with pytest.raises(SequenceError, match="invalid symbol codes"):
            decode_symbols(np.array([0, 1, 2], dtype=np.int8))


class TestDecodeSymbolsTypeSafety:
    def test_non_integer_codes_fail_loudly(self):
        import numpy as np
        import pytest

        from repro.core.errors import SequenceError
        from repro.core.representation import decode_symbols

        with pytest.raises(SequenceError, match="invalid symbol codes"):
            decode_symbols(np.array([0.5, -0.5]))  # truncation must not hide these
        assert decode_symbols(np.array([1.0, -1.0, 0.0])) == "+-0"  # exact floats ok
