"""Tests for feature-preserving transformations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import TransformationError
from repro.core.sequence import Sequence
from repro.core.transformations import (
    AmplitudeScale,
    AmplitudeShift,
    BoundedNoise,
    Compose,
    TimeScale,
    TimeShift,
    contraction,
    dilation,
)


@pytest.fixture
def base_sequence():
    return Sequence.from_values([1.0, 3.0, 2.0, 5.0, 4.0], name="base")


class TestTimeShift:
    def test_shifts_times_only(self, base_sequence):
        out = TimeShift(2.5)(base_sequence)
        assert np.allclose(out.times, base_sequence.times + 2.5)
        assert np.array_equal(out.values, base_sequence.values)

    def test_negative_shift(self, base_sequence):
        out = TimeShift(-1.0)(base_sequence)
        assert out.start_time == pytest.approx(-1.0)

    def test_preserves_peaks_flag(self):
        assert TimeShift(1.0).preserves_peaks


class TestAmplitudeShift:
    def test_shifts_values_only(self, base_sequence):
        out = AmplitudeShift(-2.0)(base_sequence)
        assert np.allclose(out.values, base_sequence.values - 2.0)
        assert np.array_equal(out.times, base_sequence.times)


class TestAmplitudeScale:
    def test_scales_about_baseline(self, base_sequence):
        out = AmplitudeScale(2.0, baseline=1.0)(base_sequence)
        assert np.allclose(out.values, 1.0 + 2.0 * (base_sequence.values - 1.0))

    def test_zero_factor_rejected(self):
        with pytest.raises(TransformationError):
            AmplitudeScale(0.0)

    def test_negative_factor_rejected(self):
        with pytest.raises(TransformationError):
            AmplitudeScale(-1.0)


class TestTimeScale:
    def test_dilation_stretches(self, base_sequence):
        out = TimeScale(2.0)(base_sequence)
        assert out.duration == pytest.approx(2.0 * base_sequence.duration)

    def test_contraction_shrinks(self, base_sequence):
        out = TimeScale(0.5)(base_sequence)
        assert out.duration == pytest.approx(0.5 * base_sequence.duration)

    def test_origin_anchoring(self):
        seq = Sequence([10.0, 11.0, 12.0], [0.0, 1.0, 2.0])
        out = TimeScale(2.0, origin=10.0)(seq)
        assert out.start_time == pytest.approx(10.0)
        assert out.end_time == pytest.approx(14.0)

    def test_non_positive_factor_rejected(self):
        with pytest.raises(TransformationError):
            TimeScale(0.0)

    def test_dilation_helper_validates(self):
        assert dilation(2.0).factor == 2.0
        with pytest.raises(TransformationError):
            dilation(0.9)

    def test_contraction_helper_validates(self):
        assert contraction(0.5).factor == 0.5
        with pytest.raises(TransformationError):
            contraction(1.5)
        with pytest.raises(TransformationError):
            contraction(0.0)


class TestBoundedNoise:
    def test_noise_within_bound(self, base_sequence):
        out = BoundedNoise(0.2, seed=1)(base_sequence)
        assert np.abs(out.values - base_sequence.values).max() <= 0.2

    def test_deterministic_by_seed(self, base_sequence):
        a = BoundedNoise(0.2, seed=5)(base_sequence)
        b = BoundedNoise(0.2, seed=5)(base_sequence)
        assert a == b

    def test_different_seeds_differ(self, base_sequence):
        a = BoundedNoise(0.2, seed=5)(base_sequence)
        b = BoundedNoise(0.2, seed=6)(base_sequence)
        assert a != b

    def test_not_peak_preserving(self):
        assert not BoundedNoise(1.0).preserves_peaks

    def test_negative_bound_rejected(self):
        with pytest.raises(TransformationError):
            BoundedNoise(-0.1)


class TestCompose:
    def test_applies_in_order(self, base_sequence):
        composed = Compose([TimeShift(1.0), TimeScale(2.0, origin=0.0)])
        out = composed(base_sequence)
        # shift first, then scale: t -> 2*(t+1)
        assert np.allclose(out.times, 2.0 * (base_sequence.times + 1.0))

    def test_then_chains(self, base_sequence):
        pipeline = TimeShift(1.0).then(AmplitudeShift(2.0)).then(TimeScale(2.0))
        out = pipeline(base_sequence)
        assert out.values[0] == pytest.approx(base_sequence.values[0] + 2.0)

    def test_empty_rejected(self):
        with pytest.raises(TransformationError):
            Compose([])

    def test_peak_preservation_is_conjunction(self):
        assert Compose([TimeShift(1.0), TimeScale(2.0)]).preserves_peaks
        assert not Compose([TimeShift(1.0), BoundedNoise(1.0)]).preserves_peaks

    def test_repr_lists_steps(self):
        assert "TimeShift" in repr(Compose([TimeShift(1.0)]))
