"""Section 5.1 runtime claim: O(peaks*n) interpolation vs O(n^2) DP.

"The algorithm's run time is O(number_of_peaks * n) ... It is much
faster than another approach we have taken, using dynamic programming
... which runs in time O(n^2)."  This benchmark sweeps the sequence
length and reports wall-clock for both breakers, asserting the
asymmetry at the largest size.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.sequence import Sequence
from repro.segmentation import DynamicProgrammingBreaker, InterpolationBreaker


def wavy_sequence(n: int, seed: int = 51) -> Sequence:
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=float)
    values = 10.0 * np.sin(2 * np.pi * t / (n / 6)) + rng.normal(0, 0.3, n)
    return Sequence(t, values)


def test_breaker_runtime_scaling(benchmark, report):
    interpolation = InterpolationBreaker(epsilon=1.0)
    dp = DynamicProgrammingBreaker(segment_penalty=1.0, error_weight=1.0)

    benchmark(interpolation.break_indices, wavy_sequence(2000))

    rows = []
    ratios = {}
    for n in (200, 400, 800, 1600):
        seq = wavy_sequence(n)
        start = time.perf_counter()
        interpolation.break_indices(seq)
        t_interp = time.perf_counter() - start
        start = time.perf_counter()
        dp.break_indices(seq)
        t_dp = time.perf_counter() - start
        ratios[n] = t_dp / t_interp
        rows.append(f"{n:>6} {t_interp * 1e3:>14.2f} {t_dp * 1e3:>12.1f} {ratios[n]:>9.1f}x")
    report.line("runtime scaling, six-peaked noisy sine:")
    report.table(f"{'n':>6} {'interp (ms)':>14} {'DP (ms)':>12} {'DP/interp':>9}", rows)

    # Paper shape: the DP is much slower and the gap widens with n.
    assert ratios[1600] > 20.0
    assert ratios[1600] > ratios[200]
    report.line(f"\nat n=1600 the DP baseline is {ratios[1600]:.0f}x slower — "
                f"the gap the paper's 'much faster' refers to")


def test_interpolation_near_linear_growth(benchmark, report):
    """Interpolation breaking grows near-linearly in n for fixed peak
    count (O(peaks * n))."""
    breaker = InterpolationBreaker(epsilon=1.0)

    def fixed_peak_sequence(n):
        t = np.arange(n, dtype=float)
        # Always exactly 4 humps regardless of n.
        return Sequence(t, 10.0 * np.sin(2 * np.pi * 4 * t / n))

    benchmark(breaker.break_indices, fixed_peak_sequence(4000))

    times = {}
    for n in (1000, 2000, 4000, 8000):
        seq = fixed_peak_sequence(n)
        start = time.perf_counter()
        breaker.break_indices(seq)
        times[n] = time.perf_counter() - start
    report.table(
        f"{'n':>6} {'time (ms)':>12} {'time/n (us)':>12}",
        [f"{n:>6} {t * 1e3:>12.2f} {t / n * 1e6:>12.2f}" for n, t in times.items()],
    )
    # Doubling n should far less than quadruple the time (not quadratic).
    growth = times[8000] / times[1000]
    report.line(f"\n8x data -> {growth:.1f}x time (quadratic would be 64x)")
    assert growth < 32.0
