"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
``report`` fixture collects the reproduced rows and writes them to
``benchmarks/results/<test>.txt`` so the artifacts survive the run (the
same lines are also printed, visible with ``pytest -s``).  Benchmarks
that publish machine-readable numbers call :meth:`Report.metric`; the
metrics land next to the text report as ``BENCH_<group>.json`` so CI
(and trend tooling) can diff them without parsing tables.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class Report:
    """Accumulates the reproduced table for one benchmark."""

    def __init__(self, name: str, metrics_group: "str | None" = None) -> None:
        self.name = name
        self.lines: list[str] = []
        self.metrics_group = metrics_group
        self.metrics: dict[str, object] = {}

    def line(self, text: str = "") -> None:
        self.lines.append(text)
        print(text)

    def table(self, header: str, rows: list[str]) -> None:
        self.line(header)
        self.line("-" * len(header))
        for row in rows:
            self.line(row)

    def metric(self, name: str, value: object) -> None:
        """Record one machine-readable number for ``BENCH_<group>.json``."""
        self.metrics[name] = value

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n", encoding="utf-8")
        if self.metrics and self.metrics_group is not None:
            metrics_path = RESULTS_DIR / f"BENCH_{self.metrics_group}.json"
            merged: dict[str, object] = {}
            if metrics_path.exists():
                merged = json.loads(metrics_path.read_text(encoding="utf-8"))
            # Replace this benchmark's entry wholesale: stale keys from a
            # renamed metric must not survive a re-run.  Other benchmarks
            # sharing the group keep their entries.
            merged[self.name] = dict(self.metrics)
            metrics_path.write_text(
                json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )


@pytest.fixture
def report(request):
    group = getattr(request.node.get_closest_marker("metrics") or None, "args", None)
    rep = Report(
        request.node.name.replace("/", "_"),
        metrics_group=group[0] if group else None,
    )
    rep.line(f"== {request.node.nodeid} ==")
    yield rep
    rep.flush()


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "metrics(group): flush Report.metric() values to BENCH_<group>.json",
    )
