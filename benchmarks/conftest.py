"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
``report`` fixture collects the reproduced rows and writes them to
``benchmarks/results/<test>.txt`` so the artifacts survive the run (the
same lines are also printed, visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class Report:
    """Accumulates the reproduced table for one benchmark."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)
        print(text)

    def table(self, header: str, rows: list[str]) -> None:
        self.line(header)
        self.line("-" * len(header))
        for row in rows:
            self.line(row)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n", encoding="utf-8")


@pytest.fixture
def report(request):
    rep = Report(request.node.name.replace("/", "_"))
    rep.line(f"== {request.node.nodeid} ==")
    yield rep
    rep.flush()
