"""Figure 10: the inverted-file R-R index (B-tree -> postings buckets).

Builds the index over a corpus of ECG representations and answers the
paper's worked query — "find the ECGs with an R-R interval of duration
n +/- delta" — through the B-tree path, checking it against a linear
scan and timing both.
"""

from __future__ import annotations

import time

from repro.query import IntervalQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, figure9_pair


def build_database(n_sequences=80):
    db = SequenceDatabase(breaker=InterpolationBreaker(epsilon=10.0), theta=5.0)
    top, bottom = figure9_pair()
    db.insert(top)
    db.insert(bottom)
    db.insert_all(ecg_corpus(n_sequences=n_sequences, seed=31))
    return db


def test_fig10_inverted_file_query(benchmark, report):
    db = build_database()
    target, delta = 135.0, 5.0

    hits = benchmark(db.rr_index.sequences_near, target, delta)

    scan = db.scan_rr(target, delta)
    assert hits == scan
    assert 0 in hits and 1 in hits  # both Figure 9 ECGs contain a 135 interval

    report.line(f"corpus: {len(db)} ECG representations, "
                f"{len(db.rr_index)} postings in {db.rr_index.bucket_count()} buckets")
    rows = []
    for target_q, delta_q in [(135.0, 5.0), (175.0, 5.0), (120.0, 0.0), (150.0, 10.0), (300.0, 5.0)]:
        index_hits = db.rr_index.sequences_near(target_q, delta_q)
        scan_hits = db.scan_rr(target_q, delta_q)
        assert index_hits == scan_hits, (target_q, delta_q)
        rows.append(f"{target_q:>6.0f} {delta_q:>6.0f} {len(index_hits):>10} {'identical':>12}")
    report.table(f"{'n':>6} {'delta':>6} {'matches':>10} {'vs scan':>12}", rows)

    # Timing comparison (indicative; correctness asserted above).
    start = time.perf_counter()
    for __ in range(200):
        db.rr_index.sequences_near(target, delta)
    index_time = time.perf_counter() - start
    start = time.perf_counter()
    for __ in range(200):
        db.scan_rr(target, delta)
    scan_time = time.perf_counter() - start
    report.line(f"\n200 queries: index {index_time * 1e3:.1f} ms vs scan {scan_time * 1e3:.1f} ms")

    db.rr_index.check_invariants()


def test_fig10_interval_query_end_to_end(benchmark, report):
    db = build_database(n_sequences=40)
    query = IntervalQuery(135.0, 5.0)

    # cache=False so every timed iteration runs the probe + grade stages
    # instead of hitting the plan-result cache.
    matches = benchmark(db.query, query, cache=False)

    assert {m.sequence_id for m in matches} == set(db.scan_rr(135.0, 5.0))
    exact = [m for m in matches if m.is_exact]
    report.line(f"IntervalQuery(135, 5): {len(matches)} matches, {len(exact)} exact")
    report.table(
        f"{'sequence':<14} {'grade':<12} {'deviation':>10}",
        [
            f"{m.name:<14} {m.grade.value:<12} {m.deviation_in('rr_interval').amount:>10.1f}"
            for m in matches[:12]
        ],
    )
    # The Figure 9 ECGs hold an exactly-135 interval: exact matches exist.
    assert any(m.is_exact for m in matches)
