"""Concurrent serving: serial vs thread-pool vs process-pool backends.

A closed-loop serving harness: ``N_CLIENTS`` request threads each fire
a fixed mix of read queries (grade-heavy shape queries plus cheap
pattern/peak-count lookups, ``cache=False`` so every request pays its
stages) while one writer thread interleaves inserts and deletes — the
mixed read/write workload the MVCC-lite snapshot path exists for.  The
same sharded shared-memory database serves all three backends (the
executor is swapped between phases), so answers are byte-identical by
construction and the comparison isolates the execution backend:

* **serial** — one thread, stages inline.
* **thread** — ``ParallelExecutor``: shard stages on a thread pool.
  NumPy stages drop the GIL, pure-Python residuals serialize on it.
* **process** — ``ProcessParallelExecutor``: shard stages in spawned
  worker processes attached read-only to the shared-memory columns;
  the GIL stops mattering, at the price of one pickle of the query
  and a snapshot-pinned manifest per scatter.

Latency is recorded per request (p50/p99) and throughput as completed
requests over wall time.  The ≥2x process-vs-serial QPS floor is the
PR's acceptance bar and is enforced only when the machine has the
cores to honour it (``os.cpu_count() >= 4`` — CI runners do); on a
single-core box the pool cannot beat the GIL-free serial loop and the
report records that honestly, cpu_count included, like the shard
scaling benchmark before it.

Metrics land in ``benchmarks/results/BENCH_serving.json`` via the
``metrics`` marker for machine consumption alongside the text table.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.core.sequence import Sequence
from repro.engine import ParallelExecutor, ProcessParallelExecutor, QueryExecutor
from repro.query import PatternQuery, PeakCountQuery, SequenceDatabase, ShapeQuery
from repro.segmentation import InterpolationBreaker

N_SEQUENCES = 12_000
N_SHARDS = 8
MAX_WORKERS = 4
N_CLIENTS = 4
TOTAL_REQUESTS = 48
PROCESS_QPS_FLOOR = 2.0
GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def _piecewise(slopes, points_per_piece, name=""):
    values = [0.0]
    for slope, n_points in zip(slopes, points_per_piece):
        for __ in range(n_points):
            values.append(values[-1] + slope)
    values = np.asarray(values)
    return Sequence(np.arange(len(values), dtype=float), values, name=name)


def _pool(pool_size: int = 60):
    """Grade-heavy pool (see test_shard_scaling): a third of the corpus
    shares the exemplar's behavioural structure, so shape queries carry
    thousands of candidates into the profile-grade stage."""
    breaker = InterpolationBreaker(0.05)
    pool = []
    for i in range(pool_size):
        if i % 3 == 0:
            slopes = [2.0 + 0.05 * (i % 7), -1.5, 1.0, -2.5 + 0.04 * (i % 5)]
            points = [5 + i % 3, 6, 5, 7]
        elif i % 3 == 1:
            slopes = [1.8, -2.2]
            points = [8, 9 + i % 4]
        else:
            slopes = [2.0, -1.0, 1.5, -1.8, 1.2, -2.0]
            points = [4, 4, 4 + i % 3, 4, 4, 4]
        pool.append(
            breaker.represent(_piecewise(slopes, points, name=f"pool-{i}"), curve_kind="regression")
        )
    return pool


def _serving_database(pool) -> SequenceDatabase:
    db = SequenceDatabase(
        breaker=InterpolationBreaker(0.05),
        keep_raw=False,
        n_shards=N_SHARDS,
        max_workers=MAX_WORKERS,
        backend="process",
    )
    for i in range(N_SEQUENCES):
        db.insert_representation(pool[i % len(pool)], name=f"seq-{i}")
    return db


def _request_mix(pool):
    return [
        ShapeQuery(pool[0], duration_tolerance=0.08, amplitude_tolerance=0.08),
        PatternQuery(GOALPOST),
        ShapeQuery(pool[3], duration_tolerance=0.08, amplitude_tolerance=0.08),
        PeakCountQuery(2, count_tolerance=1),
    ]


def _percentile(latencies: "list[float]", fraction: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _serve(db: SequenceDatabase, queries, pool, n_clients: int) -> "dict[str, float]":
    """One serving phase: ``n_clients`` reader threads + 1 writer thread.

    ``TOTAL_REQUESTS`` is fixed across load levels so QPS numbers are
    comparable: one client issues the whole stream sequentially, four
    clients split it.
    """
    requests_per_client = TOTAL_REQUESTS // n_clients
    latencies: "list[float]" = []
    latency_lock = threading.Lock()
    errors: "list[BaseException]" = []
    done = threading.Event()
    # Parties: n_clients clients + the writer + the timing main thread.
    start_barrier = threading.Barrier(n_clients + 2)

    def client(client_index: int) -> None:
        start_barrier.wait()
        try:
            for request_index in range(requests_per_client):
                query = queries[(client_index + request_index) % len(queries)]
                begin = time.perf_counter()
                db.query(query, cache=False)
                elapsed = time.perf_counter() - begin
                with latency_lock:
                    latencies.append(elapsed)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer() -> None:
        start_barrier.wait()
        hot = 0
        try:
            while not done.is_set():
                new_id = db.insert_representation(
                    pool[hot % len(pool)], name=f"hot-{hot}"
                )
                time.sleep(0.005)
                db.delete(new_id)
                hot += 1
                time.sleep(0.01)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(index,)) for index in range(n_clients)
    ]
    writer_thread = threading.Thread(target=writer)
    for thread in threads:
        thread.start()
    writer_thread.start()
    start_barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.perf_counter() - wall_start
    done.set()
    writer_thread.join(timeout=60)
    assert not errors, errors
    assert len(latencies) == n_clients * requests_per_client
    return {
        "qps": len(latencies) / wall,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "wall_s": wall,
    }


@pytest.mark.metrics("serving")
def test_concurrent_serving(report):
    pool = _pool()
    queries = _request_mix(pool)
    db = _serving_database(pool)
    cpu_count = os.cpu_count() or 1

    report.line(
        f"mixed read/write serving, n={N_SEQUENCES}, shards={N_SHARDS}, "
        f"requests/phase={TOTAL_REQUESTS}, workers={MAX_WORKERS}, "
        f"cpu_count={cpu_count}"
    )
    report.line(
        "(single-core runners see pooled backends <= serial: there is no "
        "second core to scatter to and the pool only adds dispatch cost; "
        "the 2x process floor is enforced at clients=1 where cpu_count >= 4 "
        "-- a single request stream can only reach extra cores via scatter)"
    )
    report.metric("cpu_count", cpu_count)
    report.metric("n_sequences", N_SEQUENCES)
    report.metric("n_shards", N_SHARDS)
    report.metric("clients", N_CLIENTS)
    report.metric("workers", MAX_WORKERS)

    # Parity first: every backend must return the same bytes before any
    # of them is worth timing.
    process_executor = db.executor
    assert isinstance(process_executor, ProcessParallelExecutor)
    serial_executor = QueryExecutor()
    thread_executor = ParallelExecutor(max_workers=MAX_WORKERS)
    baseline = [db.query(query, cache=False) for query in queries]
    for executor in (serial_executor, thread_executor):
        db.executor = executor
        assert [db.query(query, cache=False) for query in queries] == baseline
    db.executor = process_executor

    backends = [
        ("serial", serial_executor),
        (f"thread(w={MAX_WORKERS})", thread_executor),
        (f"process(w={MAX_WORKERS})", process_executor),
    ]
    header = (
        f"{'backend':<14} {'clients':>8} {'qps':>8} "
        f"{'p50 ms':>9} {'p99 ms':>9} {'wall s':>8}"
    )
    report.line()
    report.line(header)
    report.line("-" * len(header))
    measured: "dict[tuple[str, int], dict[str, float]]" = {}
    for n_clients in (1, N_CLIENTS):
        for label, executor in backends:
            db.executor = executor
            stats = _serve(db, queries, pool, n_clients)
            key = label.split("(")[0]
            measured[(key, n_clients)] = stats
            report.metric(f"{key}_c{n_clients}_qps", round(stats["qps"], 3))
            report.metric(f"{key}_c{n_clients}_p50_ms", round(stats["p50_ms"], 3))
            report.metric(f"{key}_c{n_clients}_p99_ms", round(stats["p99_ms"], 3))
            report.line(
                f"{label:<14} {n_clients:>8} {stats['qps']:>8.2f} "
                f"{stats['p50_ms']:>9.1f} {stats['p99_ms']:>9.1f} "
                f"{stats['wall_s']:>8.2f}"
            )
    db.executor = process_executor

    executor_stats = process_executor.stats()
    report.line()
    report.line(
        f"process executor: {executor_stats['tasks_dispatched']} shard tasks "
        f"dispatched, {executor_stats['inline_fallbacks']} inline fallbacks, "
        f"{executor_stats['snapshot_retries']} snapshot retries, "
        f"{executor_stats['pool_breaks']} pool breaks"
    )
    report.metric("tasks_dispatched", executor_stats["tasks_dispatched"])
    report.metric("snapshot_retries", executor_stats["snapshot_retries"])
    # The serving phases must actually have exercised the pool — a
    # silently inline process backend would "win" by not being one.
    assert executor_stats["tasks_dispatched"] > 0
    assert executor_stats["pool_breaks"] == 0

    speedup = measured[("process", 1)]["qps"] / measured[("serial", 1)]["qps"]
    saturated = (
        measured[("process", N_CLIENTS)]["qps"] / measured[("serial", N_CLIENTS)]["qps"]
    )
    report.metric("process_vs_serial_qps_c1", round(speedup, 3))
    report.metric(f"process_vs_serial_qps_c{N_CLIENTS}", round(saturated, 3))
    floor_enforced = cpu_count >= 4
    report.metric("floor_enforced", floor_enforced)
    report.line(
        f"process vs serial throughput: {speedup:.2f}x at clients=1, "
        f"{saturated:.2f}x at clients={N_CLIENTS} "
        f"(floor {PROCESS_QPS_FLOOR:.0f}x at clients=1, "
        f"{'enforced' if floor_enforced else f'not enforced at cpu_count={cpu_count}'})"
    )

    thread_executor.close()
    db.close()

    if floor_enforced:
        assert speedup >= PROCESS_QPS_FLOOR
