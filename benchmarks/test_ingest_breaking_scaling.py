"""End-to-end raw ingest: batched breaking pipeline vs per-insert.

PR 3 made the store layer's column-block append ~34x faster, but
end-to-end raw ingest moved only ~1.1x because the breaking recursion
and the per-sequence index adds still ran as scalar Python.  This
benchmark measures the breaking-dominated workload after the
frontier-batched breaking kernel and the bulk index ingestion landed:

* **breaker layer** — ``break_indices_many`` (one vectorized frontier
  over the whole batch) vs scalar ``break_indices`` per sequence,
  boundaries asserted identical;
* **end-to-end** — a fresh database per run, raw sequences in, through
  either per-sequence ``insert`` or the batched ``ingest_pipeline``
  (sharded store, whole-batch breaking / symbol classification / trie
  and R-R index blocks / column-block appends).

The end-to-end speedup must clear ``INGEST_SPEEDUP_FLOOR`` (3x; the
measured number on an idle machine is ~4x), and both databases must
answer a query workload identically.
"""

from __future__ import annotations

import time

import numpy as np

from repro.query import PeakCountQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import ecg_corpus, fever_corpus

N_SEQUENCES = 2_000
N_SHARDS = 8
BATCH_SIZE = 500
#: Combined floor over both workloads — the acceptance bar.
INGEST_SPEEDUP_FLOOR = 3.0
#: Per-workload guard: neither corpus may fall far behind the combined
#: number (absorbs single-measurement scheduler noise on shared runners).
INGEST_WORKLOAD_FLOOR = 2.5
BREAKER_SPEEDUP_FLOOR = 4.0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_breaking_kernel_scaling(report):
    corpus = ecg_corpus(n_sequences=300, n_points=500)
    breaker = InterpolationBreaker(10.0)

    scalar_bounds = [breaker.break_indices(sequence) for sequence in corpus]
    batch_bounds = breaker.break_indices_many(corpus)
    assert batch_bounds == scalar_bounds  # bit-identical boundaries

    scalar_s = _best_of(lambda: [breaker.break_indices(sequence) for sequence in corpus])
    batch_s = _best_of(lambda: breaker.break_indices_many(corpus))
    speedup = scalar_s / batch_s
    report.line(
        f"breaking kernel ({len(corpus)} ECGs, 500 points, eps=10): "
        f"scalar {scalar_s * 1e3:.0f} ms, frontier-batched {batch_s * 1e3:.0f} ms "
        f"-> {speedup:.1f}x (floor {BREAKER_SPEEDUP_FLOOR:.0f}x)"
    )
    segments = sum(len(b) for b in batch_bounds)
    report.line(f"segments produced: {segments} ({segments / len(corpus):.1f} per sequence)")
    assert speedup >= BREAKER_SPEEDUP_FLOOR


def _end_to_end(report, label, corpus, epsilon):
    def ingest_direct():
        database = SequenceDatabase(breaker=InterpolationBreaker(epsilon))
        for sequence in corpus:
            database.insert(sequence)
        assert len(database) == len(corpus)
        return database

    def ingest_piped():
        database = SequenceDatabase(breaker=InterpolationBreaker(epsilon), n_shards=N_SHARDS)
        with database.ingest_pipeline(batch_size=BATCH_SIZE) as pipeline:
            pipeline.add_many(corpus)
        assert len(database) == len(corpus)
        return database

    # Parity first: both paths must build byte-identical state and
    # answer queries identically (full parity lives in the test suite).
    direct_db = ingest_direct()
    piped_db = ingest_piped()
    for sequence_id in direct_db.ids()[:: len(corpus) // 50]:
        assert (
            direct_db.representation_of(sequence_id).segments
            == piped_db.representation_of(sequence_id).segments
        )
        assert direct_db.peak_count_of(sequence_id) == piped_db.peak_count_of(sequence_id)
        assert np.array_equal(
            direct_db.rr_intervals_of(sequence_id), piped_db.rr_intervals_of(sequence_id)
        )
    query = PeakCountQuery(2, count_tolerance=1)
    assert direct_db.query(query, cache=False) == piped_db.query(query, cache=False)
    del direct_db, piped_db

    direct_s = _best_of(ingest_direct)
    piped_s = _best_of(ingest_piped)
    speedup = direct_s / piped_s
    report.line(
        f"{label}: per-insert {direct_s:.2f}s, batched pipeline {piped_s:.2f}s -> "
        f"{speedup:.2f}x speedup; "
        f"{direct_s / len(corpus) * 1e3:.2f} -> {piped_s / len(corpus) * 1e3:.2f} ms/sequence"
    )
    return direct_s, piped_s


def test_ingest_breaking_scaling(report):
    report.line(
        f"end-to-end raw ingest, n={N_SEQUENCES} per workload, "
        f"shards={N_SHARDS}, batch_size={BATCH_SIZE}"
    )
    # ECG-scale: 500-point sequences at the paper's ECG tolerance
    # (epsilon 10, as in the Figure 9 benchmarks) — long spiky inputs,
    # deep breaking recursion, ~36 segments each.
    ecg_direct, ecg_piped = _end_to_end(
        report, "ecg (500 pts, eps=10)", ecg_corpus(n_sequences=N_SEQUENCES, n_points=500), 10.0
    )
    # Fever: the goal-post corpus at the paper's fever tolerance —
    # short smooth inputs where per-call overhead, not FLOPs, dominates.
    fever_direct, fever_piped = _end_to_end(
        report,
        "fever (49 pts, eps=0.5)",
        fever_corpus(
            n_two_peak=N_SEQUENCES // 4,
            n_one_peak=N_SEQUENCES // 4,
            n_three_peak=N_SEQUENCES - 2 * (N_SEQUENCES // 4),
        ),
        0.5,
    )
    combined = (ecg_direct + fever_direct) / (ecg_piped + fever_piped)
    report.line(
        f"combined: per-insert {ecg_direct + fever_direct:.2f}s, pipeline "
        f"{ecg_piped + fever_piped:.2f}s -> {combined:.2f}x "
        f"(floor {INGEST_SPEEDUP_FLOOR:.1f}x combined, "
        f"{INGEST_WORKLOAD_FLOOR:.1f}x per workload; was 1.12x before the "
        f"batched breaking kernel, see test_shard_ingest_scaling.txt)"
    )
    assert combined >= INGEST_SPEEDUP_FLOOR
    assert ecg_direct / ecg_piped >= INGEST_WORKLOAD_FLOOR
    assert fever_direct / fever_piped >= INGEST_WORKLOAD_FLOOR
