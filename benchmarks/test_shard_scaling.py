"""Sharded scatter-gather engine vs the PR 2 single-store engine.

Two benchmarks, both recorded under ``benchmarks/results/``:

* **Query scaling** — a 50k-sequence grade-heavy workload (shape
  grading dominates: a third of the corpus shares the exemplar's
  behavioural structure, so tens of thousands of candidates survive the
  structural prefilter and must be profile-graded).  Timed through the
  PR 2-equivalent plan (columnar prefilter + per-candidate residual
  grading on the single store) and through this PR's paths: single
  store, sharded store with the serial executor, and sharded store with
  the thread-pooled :class:`~repro.engine.ParallelExecutor`.  All paths
  must agree byte-for-byte; the parallel sharded path must beat the
  PR 2 plan by at least 2x (measured: far more — the win is the
  vectorized profile-grade stage, which shards cleanly; on a
  single-core runner the thread pool itself adds nothing, which the
  report records honestly via the machine's CPU count).

* **Ingest scaling** — per-insert appends vs the batched pipeline's
  whole-column-block appends at the store layer (50k sequences, where
  the batched path must win by at least 5x), plus end-to-end
  raw-sequence numbers.  Since the frontier-batched breaking kernel and
  bulk index ingestion landed, the pipeline batches breaking and index
  maintenance too (the dedicated floors live in
  ``test_ingest_breaking_scaling.py``); here the end-to-end number is a
  sanity cross-check on the fever corpus.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.sequence import Sequence
from repro.engine import ColumnarSegmentStore, ParallelExecutor, ShardedSegmentStore
from repro.engine.plan import QueryPlan
from repro.query import (
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus

N_SEQUENCES = 50_000
N_SHARDS = 8
MAX_WORKERS = 4
QUERY_SPEEDUP_FLOOR = 2.0
INGEST_SPEEDUP_FLOOR = 5.0
GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def _piecewise(slopes, points_per_piece, name=""):
    """Noise-free piecewise-linear curve, one segment per slope."""
    values = [0.0]
    for slope, n_points in zip(slopes, points_per_piece):
        for __ in range(n_points):
            values.append(values[-1] + slope)
    values = np.asarray(values)
    return Sequence(np.arange(len(values), dtype=float), values, name=name)


def _pool(pool_size: int = 60):
    """Pre-broken pool: 1/3 two-peak curves sharing one behavioural
    structure (``+-+-``) with jittered profiles, the rest one- and
    three-peak shapes.  Replicated to 50k this makes shape grading the
    workload's heavy stage: every structural sibling survives the
    prefilter and must be profile-graded."""
    breaker = InterpolationBreaker(0.05)
    pool = []
    for i in range(pool_size):
        if i % 3 == 0:  # the exemplar's structural class, profiles jittered
            slopes = [2.0 + 0.05 * (i % 7), -1.5, 1.0, -2.5 + 0.04 * (i % 5)]
            points = [5 + i % 3, 6, 5, 7]
        elif i % 3 == 1:  # one peak
            slopes = [1.8, -2.2]
            points = [8, 9 + i % 4]
        else:  # three peaks
            slopes = [2.0, -1.0, 1.5, -1.8, 1.2, -2.0]
            points = [4, 4, 4 + i % 3, 4, 4, 4]
        sequence = _piecewise(slopes, points, name=f"pool-{i}")
        pool.append(breaker.represent(sequence, curve_kind="regression"))
    return pool


def _database_of(n: int, pool, **kwargs) -> SequenceDatabase:
    db = SequenceDatabase(breaker=InterpolationBreaker(0.05), keep_raw=False, **kwargs)
    for i in range(n):
        db.insert_representation(pool[i % len(pool)], name=f"seq-{i}")
    return db


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pr2_shape_plan(query: ShapeQuery, database: SequenceDatabase) -> QueryPlan:
    """The PR 2 staged plan for shape queries: structural prefilter, then
    residual per-candidate grading (no vectorized profile stage)."""
    query._signature_for(database)
    return QueryPlan(
        query=query,
        prefilter=query._prefilter,
        residual=query._grade_scalar,
        label="shape-pr2",
        fingerprint=None,
    )


def test_shard_query_scaling(report):
    pool = _pool()
    queries = {
        "shape(two-peak-third)": ShapeQuery(
            pool[0], duration_tolerance=0.08, amplitude_tolerance=0.08
        ),
        "shape(one-peak-third)": ShapeQuery(
            pool[1], duration_tolerance=0.08, amplitude_tolerance=0.08
        ),
        "pattern(goalpost)": PatternQuery(GOALPOST),
        "peak-count(2±1)": PeakCountQuery(2, count_tolerance=1),
        "steepness(1.9)": SteepnessQuery(1.9, slope_tolerance=0.2),
    }
    single = _database_of(N_SEQUENCES, pool)
    sharded = _database_of(N_SEQUENCES, pool, n_shards=N_SHARDS)

    report.line(
        f"grade-heavy workload, n={N_SEQUENCES}, shards={N_SHARDS}, "
        f"workers={MAX_WORKERS}, cpu_count={os.cpu_count()}"
    )
    report.line(
        "(single-core runners see parallel ~= serial; the recorded speedup "
        "comes from the sharded vectorized grade stages, not thread count)"
    )
    shape_query = queries["shape(two-peak-third)"]
    survivors = len(shape_query._prefilter(single, single.store, None))
    report.line(f"shape structural survivors: {survivors} of {N_SEQUENCES}")
    assert survivors >= N_SEQUENCES // 4  # grade-heavy by construction

    header = (
        f"{'query':<26} {'pr2 ms':>10} {'1-shard ms':>11} "
        f"{'8-shard ms':>11} {'8sh+pool ms':>12} {'speedup':>8}"
    )
    report.line(header)
    report.line("-" * len(header))

    serial = sharded.executor
    pool_executor = ParallelExecutor(max_workers=MAX_WORKERS)
    pr2_total = 0.0
    parallel_total = 0.0
    for label, query in queries.items():
        single_matches = single.query(query, cache=False)
        sharded_matches = sharded.query(query, cache=False)
        sharded.executor = pool_executor
        parallel_matches = sharded.query(query, cache=False)
        sharded.executor = serial
        assert single_matches == sharded_matches == parallel_matches, label

        if isinstance(query, ShapeQuery):
            pr2_plan = _pr2_shape_plan(query, single)
            pr2_matches = single.executor.execute(single, pr2_plan, True)
            assert pr2_matches == single_matches, "PR 2 plan diverged"
            pr2_s = _best_of(
                lambda: single.executor.execute(single, pr2_plan, True), repeats=2
            )
        else:
            # Non-shape stages are unchanged since PR 2: the single-store
            # vectorized run is the PR 2 time.
            pr2_s = _best_of(lambda: single.query(query, cache=False))
        single_s = _best_of(lambda: single.query(query, cache=False))
        sharded_s = _best_of(lambda: sharded.query(query, cache=False))
        sharded.executor = pool_executor
        parallel_s = _best_of(lambda: sharded.query(query, cache=False))
        sharded.executor = serial
        pr2_total += pr2_s
        parallel_total += parallel_s
        report.line(
            f"{label:<26} {pr2_s * 1e3:>10.1f} {single_s * 1e3:>11.1f} "
            f"{sharded_s * 1e3:>11.1f} {parallel_s * 1e3:>12.1f} "
            f"{pr2_s / parallel_s:>7.1f}x"
        )

    workload_speedup = pr2_total / parallel_total
    report.line()
    report.line(
        f"workload total: PR 2 plans {pr2_total * 1e3:.1f} ms, sharded+parallel "
        f"{parallel_total * 1e3:.1f} ms -> {workload_speedup:.1f}x speedup "
        f"(floor {QUERY_SPEEDUP_FLOOR:.0f}x)"
    )
    pool_executor.close()
    assert workload_speedup >= QUERY_SPEEDUP_FLOOR


def test_shard_ingest_scaling(report):
    pool = _pool()
    theta = 0.05
    items = []
    rng = np.random.default_rng(5)
    for i in range(N_SEQUENCES):
        representation = pool[i % len(pool)]
        items.append((i, representation, 2, rng.uniform(2.0, 20.0, 2)))

    report.line(f"ingest: per-insert appends vs batched column blocks, n={N_SEQUENCES}")

    per_insert_store = ColumnarSegmentStore(theta=theta)
    start = time.perf_counter()
    for item in items:
        per_insert_store.insert(item[0], item[1], peak_count=item[2], rr=item[3])
    per_insert_s = time.perf_counter() - start

    block_store = ShardedSegmentStore(N_SHARDS, theta=theta)
    start = time.perf_counter()
    block_store.extend(items)
    block_s = time.perf_counter() - start
    assert len(block_store) == len(per_insert_store) == N_SEQUENCES
    block_store.check_consistency()

    store_speedup = per_insert_s / block_s
    report.line(
        f"engine store layer: per-insert {per_insert_s:.2f}s, "
        f"batched pipeline column-block append {block_s:.2f}s -> "
        f"{store_speedup:.1f}x speedup (floor {INGEST_SPEEDUP_FLOOR:.0f}x)"
    )

    # End-to-end raw-sequence ingest: the pipeline now batches breaking
    # (frontier kernel) and index maintenance as well as the appends;
    # the dedicated floors live in test_ingest_breaking_scaling.py.
    # Best-of-2 into fresh databases so one scheduler hiccup on a shared
    # CI runner cannot flip the comparison.
    corpus = fever_corpus(n_two_peak=700, n_one_peak=650, n_three_peak=650)

    def ingest_direct():
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        for sequence in corpus:
            db.insert(sequence)
        assert len(db) == len(corpus)

    def ingest_piped():
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), n_shards=N_SHARDS)
        with db.ingest_pipeline(batch_size=500) as pipeline:
            pipeline.add_many(corpus)
        assert len(db) == len(corpus)

    direct_s = _best_of(ingest_direct, repeats=2)
    piped_s = _best_of(ingest_piped, repeats=2)

    report.line(
        f"end-to-end raw ingest ({len(corpus)} sequences, batched breaking, "
        f"best of 2): per-insert {direct_s:.2f}s, pipeline {piped_s:.2f}s -> "
        f"{direct_s / piped_s:.2f}x"
    )
    report.line()
    report.line(
        f"batched ingest pipeline vs per-insert (column-block append path): "
        f"{store_speedup:.1f}x speedup (>= {INGEST_SPEEDUP_FLOOR:.0f}x required)"
    )
    assert store_speedup >= INGEST_SPEEDUP_FLOOR
    # The pipeline must never lose meaningfully; 0.9 absorbs timer noise
    # on shared runners.
    assert direct_s / piped_s >= 0.9
