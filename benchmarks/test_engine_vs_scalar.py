"""Vectorized executor vs legacy per-sequence loop at scale.

Grows the database to n ∈ {100, 1k, 10k} sequences (reusing a pool of
pre-broken representations so ingest cost does not dominate the run)
and times the three fully vectorized query types through both paths.
The speedup table lands in ``benchmarks/results/`` alongside the other
reproduced figures; at 10k sequences the engine must be at least 5x
faster, and both paths must agree exactly at every size.
"""

from __future__ import annotations

import time

from repro.query import IntervalQuery, PeakCountQuery, SequenceDatabase, SteepnessQuery
from repro.segmentation import InterpolationBreaker
from repro.workloads import k_peak_sequence

SIZES = [100, 1_000, 10_000]
SPEEDUP_FLOOR_AT_10K = 5.0


def _representation_pool(pool_size: int = 40):
    """Pre-broken fever-like curves; 1 in 40 carries the queried 5-peak shape."""
    breaker = InterpolationBreaker(0.5)
    pool = []
    for i in range(pool_size):
        if i % 40 == 0:
            hours = [3.0, 7.0, 11.0, 15.0, 19.0]  # the rare 5-peak target
        else:
            hours = [[12.0], [6.0, 18.0], [4.0, 12.0, 20.0]][i % 3]
        sequence = k_peak_sequence(hours, noise=0.3, seed=i, name=f"pool-{i}")
        pool.append(breaker.represent(sequence, curve_kind="regression"))
    return pool


def _database_of(n: int) -> SequenceDatabase:
    pool = _representation_pool()
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5), keep_raw=False)
    for i in range(n):
        db.insert_representation(pool[i % len(pool)], name=f"seq-{i}")
    return db


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_vs_scalar_scaling(report):
    queries = {
        "peak-count(5)": PeakCountQuery(5),
        "steepness(4.5)": SteepnessQuery(4.5),
        "rr-interval(4±0.05)": IntervalQuery(4.0, 0.05),
    }
    report.line("vectorized executor vs legacy per-sequence loop (best of 3)")
    header = f"{'n':>7} {'query':<22} {'legacy ms':>10} {'engine ms':>10} {'speedup':>8}"
    report.line(header)
    report.line("-" * len(header))
    speedups_at_largest: "list[float]" = []
    for n in SIZES:
        db = _database_of(n)
        for label, query in queries.items():
            engine_matches = db.query(query)
            legacy_matches = db.query(query, engine=False)
            assert engine_matches == legacy_matches, (n, label)
            legacy_s = _best_of(lambda: db.query(query, engine=False))
            # cache=False: this benchmark measures the vectorized
            # executor itself, not a result-cache hit.
            engine_s = _best_of(lambda: db.query(query, cache=False))
            speedup = legacy_s / engine_s if engine_s > 0 else float("inf")
            if n == SIZES[-1]:
                speedups_at_largest.append(speedup)
            report.line(
                f"{n:>7} {label:<22} {legacy_s * 1e3:>10.3f} {engine_s * 1e3:>10.3f} "
                f"{speedup:>7.1f}x"
            )
    best = max(speedups_at_largest)
    report.line()
    report.line(
        f"best speedup at n={SIZES[-1]}: {best:.1f}x (floor {SPEEDUP_FLOOR_AT_10K:.0f}x)"
    )
    assert best >= SPEEDUP_FLOOR_AT_10K
