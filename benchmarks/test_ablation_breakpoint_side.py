"""Ablation: breakpoint side assignment (paper Figure 8, steps 4a-4c).

The paper adjusted Schneider's algorithm so the split point joins
whichever side's refitted curve it is closer to.  This ablation
compares that policy against always-left and always-right assignment.
"""

from __future__ import annotations


from repro.segmentation import InterpolationBreaker, fragmentation_ratio, is_partition
from repro.workloads import figure9_pair, goalpost_fever


def test_split_side_policies(benchmark, report):
    fever = goalpost_fever(noise=0.3, seed=81)
    top, __ = figure9_pair()
    datasets = {"fever (eps=0.5)": (fever, 0.5), "ecg (eps=10)": (top, 10.0)}

    benchmark(InterpolationBreaker(0.5, split_side="closer").break_indices, fever)

    rows = []
    results = {}
    for data_label, (seq, eps) in datasets.items():
        for side in ("closer", "left", "right"):
            breaker = InterpolationBreaker(eps, split_side=side)
            bounds = breaker.break_indices(seq)
            assert is_partition(bounds, len(seq))
            rep = breaker.represent(seq, curve_kind="regression")
            err = rep.reconstruction_error(seq)
            results[(data_label, side)] = (len(bounds), err)
            rows.append(
                f"{data_label:<16} {side:<8} {len(bounds):>9} "
                f"{fragmentation_ratio(bounds):>6.2f} {err:>10.3f}"
            )
    report.line("breakpoint side-assignment ablation:")
    report.table(f"{'dataset':<16} {'side':<8} {'segments':>9} {'frag':>6} {'max err':>10}", rows)

    # The paper's 'closer' policy is never worse than the best fixed
    # policy by more than a small margin on segment count.
    for data_label in datasets:
        closer_segments = results[(data_label, "closer")][0]
        best_fixed = min(results[(data_label, s)][0] for s in ("left", "right"))
        assert closer_segments <= best_fixed + 3
    report.line("\n'closer' stays within 3 segments of the best fixed policy on both datasets")
