"""Figure 6: breaking a sequence at extrema, regression line per segment.

The paper's figure shows a temperature sequence broken by the linear
interpolation algorithm with the approximating regression line (slope
and intercept) printed next to each subsequence.  This benchmark
regenerates that table and times the break+represent pipeline.
"""

from __future__ import annotations

from repro.core.features import count_peaks
from repro.segmentation import InterpolationBreaker, fragmentation_ratio, is_partition
from repro.workloads import k_peak_sequence


def test_fig6_breaking_with_regression_lines(benchmark, report):
    # A 60-point curve in the figure's style (several prominent swings).
    sequence = k_peak_sequence(
        [10.0, 30.0, 50.0],
        n_points=61,
        duration_hours=60.0,
        baseline=98.0,
        amplitudes=[7.0, 8.0, 6.5],
        widths=[3.5, 4.0, 3.0],
        noise=0.2,
        seed=66,
        name="figure-6",
    )
    breaker = InterpolationBreaker(epsilon=0.5)

    rep = benchmark(breaker.represent, sequence, "regression")

    boundaries = [(s.start_index, s.end_index) for s in rep]
    assert is_partition(boundaries, len(sequence))

    report.line(f"breaking {sequence.name!r} (n={len(sequence)}) at eps=0.5:")
    report.table(
        f"{'segment':<10} {'indices':<12} {'regression line':<20} {'slope sign':>10}",
        [
            f"{i:<10} [{s.start_index:>2}..{s.end_index:>2}]    "
            f"{s.function.format_equation():<20} {'+' if s.is_rising(0.05) else '-' if s.is_falling(0.05) else '0':>10}"
            for i, s in enumerate(rep)
        ],
    )
    symbols = rep.symbol_string(0.05)
    report.line(f"\nsymbol string: {symbols} (collapsed: {rep.symbol_string(0.05, collapse_runs=True)})")
    report.line(f"peaks: {count_peaks(rep, 0.05)}; fragmentation: {fragmentation_ratio(boundaries):.2f}")

    # Paper shape: slope signs alternate around each prominent extremum
    # and the three generated peaks are all recovered.
    assert count_peaks(rep, 0.05) == 3
    assert fragmentation_ratio(boundaries) <= 0.5
