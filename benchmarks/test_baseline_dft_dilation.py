"""Section 3: DFT similarity cannot detect dilation/contraction.

"Similarity tests relying on proximity in the frequency domain can not
detect similarity under transformations such as dilation ... none of
the sequences of Figure 5 matches the sequence given in Figure 3 if
main frequencies are compared."  This benchmark reproduces the claim
quantitatively: dominant frequencies diverge by the time-scale factor,
the DFT F-index recall on transformed variants is zero, and the
feature-based query's recall is one.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.dft import FIndex, dft_features, dominant_frequency, feature_distance
from repro.query import PatternQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import figure3_sequence, figure5_variants

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def test_dft_blind_to_dilation(benchmark, report):
    exemplar = figure3_sequence()
    variants = figure5_variants(exemplar)

    benchmark(dominant_frequency, exemplar)

    base_freq = dominant_frequency(exemplar)
    base_features = dft_features(exemplar.values, k=4)

    # The F-index view: every variant observed through the exemplar's
    # clock window (hours 0..24), as a stored fixed-grid log would be.
    # Resampling a variant over its *own* span would silently undo pure
    # time scaling — the common window is what the paper compares.
    from repro.core.sequence import Sequence

    findex = FIndex(k=4)
    findex.add(0, exemplar)
    resampled = {}
    for i, (label, __, variant) in enumerate(variants, start=1):
        window_values = np.interp(exemplar.times, variant.times, variant.values)
        common = Sequence(exemplar.times, window_values, name=label)
        resampled[label] = common
        findex.add(i, common)

    rows = []
    for label, __, variant in variants:
        freq = dominant_frequency(variant)
        fdist = feature_distance(base_features, dft_features(resampled[label].values, k=4))
        rows.append(f"{label:<20} {freq:>12.4f} {freq / base_freq:>9.2f} {fdist:>12.2f}")
    report.line(f"exemplar dominant frequency: {base_freq:.4f} cycles/hour")
    report.table(
        f"{'variant':<20} {'dom. freq':>12} {'ratio':>9} {'DFT dist':>12}",
        rows,
    )

    # Quantitative claims: dilation halves the dominant frequency,
    # contraction doubles it.
    dilated_freq = dominant_frequency(dict((l, v) for l, __, v in variants)["dilation"])
    contracted_freq = dominant_frequency(dict((l, v) for l, __, v in variants)["contraction"])
    assert abs(dilated_freq - base_freq / 2.0) / base_freq < 0.15
    assert abs(contracted_freq - base_freq * 2.0) / base_freq < 0.3

    # Recall comparison at a tolerance generous enough to accept the
    # exemplar's own small perturbations.
    epsilon = 0.25 * float(np.linalg.norm(exemplar.values - exemplar.values.mean()))
    dft_hits = set(findex.candidates(exemplar, epsilon)) - {0}
    dft_recall = len(dft_hits) / len(variants)

    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert(exemplar.with_name("exemplar"))
    for __, ___, variant in variants:
        db.insert(variant)
    feature_hits = {m.name for m in db.query(PatternQuery(GOALPOST))} - {"exemplar"}
    feature_recall = len(feature_hits) / len(variants)

    report.line(f"\nrecall on the 6 transformed variants: "
                f"DFT F-index {dft_recall:.2f} vs feature-based {feature_recall:.2f}")
    # Paper shape: frequency-domain matching misses the time-warped
    # variants entirely; amplitude-only shifts may or may not survive,
    # but recall stays far below the feature-based approach's 1.0.
    assert feature_recall == 1.0
    assert dft_recall <= 0.5
    time_warped = {"dilation", "contraction", "shift+scale+dilate"}
    assert not (dft_hits & {i for i, (l, __, ___) in enumerate(variants, start=1) if l in time_warped})
