"""Section 2.2 by exemplar: "the query can be an exemplar or an expression".

The Figure 3-5 experiment replayed with an exemplar-based ShapeQuery
instead of a pattern expression: the exemplar's transformation class
must match exactly; structurally different sequences must be rejected;
same-structure different-proportion sequences grade as approximate
under the duration/amplitude tolerances.
"""

from __future__ import annotations

from repro.core.tolerance import MatchGrade
from repro.query import SequenceDatabase, ShapeQuery
from repro.segmentation import InterpolationBreaker
from repro.workloads import figure3_sequence, figure5_variants, k_peak_sequence


def test_exemplar_query_over_transform_classes(benchmark, report):
    db = SequenceDatabase(breaker=InterpolationBreaker(0.1), theta=0.0, normalize=True)
    exemplar = figure3_sequence()
    db.insert(exemplar.with_name("exemplar"))
    for __, ___, variant in figure5_variants(exemplar):
        db.insert(variant)
    negatives = {
        "one-peak": k_peak_sequence([12.0], noise=0.0, name="one-peak"),
        "three-peak": k_peak_sequence([4.0, 12.0, 20.0], noise=0.0, name="three-peak"),
        "wide-two-peak": k_peak_sequence(
            [6.0, 18.0], widths=[3.0, 3.0], noise=0.0, name="wide-two-peak"
        ),
    }
    for seq in negatives.values():
        db.insert(seq)

    query = ShapeQuery(exemplar, duration_tolerance=0.06, amplitude_tolerance=0.06)
    matches = benchmark(db.query, query)

    by_name = {m.name: m for m in matches}
    rows = []
    for sequence_id in db.ids():
        name = db.name_of(sequence_id)
        match = by_name.get(name)
        grade = match.grade.value if match else "reject"
        dur = f"{match.deviation_in('shape_duration').amount:.4f}" if match else "-"
        rows.append(f"{name:<22} {grade:<12} {dur:>10}")
    report.line("exemplar: the Figure-3 two-peak curve; ShapeQuery tolerances 0.06/0.06")
    report.table(f"{'candidate':<22} {'grade':<12} {'dur dev':>10}", rows)

    # Shape: the exemplar and every Figure-5 transform is in the result
    # set, all within tolerance.  The triangular exemplar's apexes sit
    # exactly on samples, so an argmax tie can wobble one breakpoint by
    # a single sample under some transforms — those variants grade
    # APPROXIMATE with a ~1-sample deviation; the rest are EXACT.
    variant_names = {v.name for __, ___, v in figure5_variants(exemplar)}
    matched_names = set(by_name)
    assert ({"exemplar"} | variant_names) <= matched_names
    exact_names = {m.name for m in matches if m.grade is MatchGrade.EXACT}
    assert "exemplar" in exact_names
    assert len(exact_names & variant_names) >= 3
    for name in variant_names:
        assert by_name[name].deviation_in("shape_duration").within
    # Structurally different sequences never match.
    assert "one-peak" not in by_name
    assert "three-peak" not in by_name
    report.line(f"\nall {len(variant_names)} transforms matched "
                f"({len(exact_names & variant_names)} exact, rest within one sample of exact); "
                f"1- and 3-peak negatives rejected")
