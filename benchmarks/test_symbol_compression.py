"""Succinct symbol columns: memory footprint and counting-query speed.

The succinct backend's contract (PR 10) is a trade: both symbol views
re-encoded as wavelet matrices over rank/select bitvectors at ~2.3
bits per symbol (vs 8 for the raw ``int8`` columns, a >=3x reduction,
enforced here), with count/position queries answered by the
word-parallel bit-plane kernel instead of the per-sequence grade scan.

Speed is reported against three incumbents on the clickstream corpus:

* **grade scan** (``query_legacy``) — the pre-engine scalar path, one
  Python-graded sequence at a time.  This is the scan path the
  counting family replaces, and carries the >=10x floor, measured on
  selective *signature* motifs (the workload counting queries exist
  for: "how many sessions show this specific re-engagement shape").
  Dense motifs that match most of the corpus are reported too — there
  shared match materialization dominates both sides and the ratio
  compresses; the report says so rather than hiding it.
* **vectorized scan** — the uncompressed backend's own kernel over the
  raw ``int8`` columns.  The succinct path pays one bit-plane
  reconstruction to reach parity with it, so this ratio hovers around
  1x: the 3.5x memory reduction is bought without giving up the
  vectorized query speed.
* **DFA containment** — the engine's pre-PR answer to containment
  (``PATTERN '(+|-|0)* <motif> (+|-|0)*'``), kernel-level.

Metrics land in ``benchmarks/results/BENCH_memory.json`` via the
``metrics`` marker; CI runs this file and the floors gate the build.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine.nfa import ColumnPatternMatcher
from repro.query import SequenceDatabase
from repro.query.queries import CountQuery, MotifQuery
from repro.workloads import clickstream_corpus

N_SEQUENCES = 1600
N_POINTS = 96
MEMORY_RATIO_FLOOR = 3.0
COUNT_SPEEDUP_FLOOR = 10.0

#: Selective signature motifs — the floored count-query workload.
SIGNATURE_MOTIFS = ("+-+-", "0+0+", "+-0+")
#: Denser motifs, reported without a floor.
DENSE_MOTIFS = ("+-+", "-0-0")


def _timed(action, reps: int) -> float:
    action()  # warm: build indexes, fault pages
    start = time.perf_counter()
    for __ in range(reps):
        action()
    return (time.perf_counter() - start) / reps


@pytest.fixture(scope="module")
def databases():
    corpus = clickstream_corpus(n_sequences=N_SEQUENCES, n_points=N_POINTS, seed=31)
    succinct = SequenceDatabase(symbol_backend="succinct")
    uncompressed = SequenceDatabase(symbol_backend="uncompressed")
    succinct.insert_all(corpus)
    uncompressed.insert_all(corpus)
    succinct.count_matching("+")  # build the wavelet matrices up front
    yield succinct, uncompressed
    succinct.close()
    uncompressed.close()


@pytest.mark.metrics("memory")
def test_symbol_column_memory_footprint(databases, report):
    succinct, __ = databases
    store = succinct.store
    stats = store.succinct_report()
    raw_segment = store.segment_symbols.nbytes
    raw_behavior = store.behavior_symbols.nbytes
    raw_total = raw_segment + raw_behavior
    ratio = raw_total / stats["nbytes"]

    report.line(f"corpus: {N_SEQUENCES} clickstream traces, {stats['symbols']} symbols")
    report.table(
        f"{'column':<22}{'raw int8 B':>12}{'succinct B':>12}",
        [
            f"{'positional symbols':<22}{raw_segment:>12}{'':>12}",
            f"{'behavioural symbols':<22}{raw_behavior:>12}{'':>12}",
            f"{'both views':<22}{raw_total:>12}{stats['nbytes']:>12}",
        ],
    )
    report.line(
        f"bits/symbol: {stats['bits_per_symbol']:.2f} (raw: 8.00)   "
        f"compression: {ratio:.2f}x   rank blocks: {stats['rank_blocks']}"
    )
    report.metric("raw_bytes", raw_total)
    report.metric("succinct_bytes", stats["nbytes"])
    report.metric("memory_ratio", round(ratio, 3))
    report.metric("bits_per_symbol", round(stats["bits_per_symbol"], 3))
    assert ratio >= MEMORY_RATIO_FLOOR, (
        f"succinct views must be >={MEMORY_RATIO_FLOOR}x smaller than the "
        f"raw symbol columns, got {ratio:.2f}x"
    )


@pytest.mark.metrics("memory")
def test_count_query_speedup_over_grade_scan(databases, report):
    succinct, uncompressed = databases
    rows = []
    floored: "list[float]" = []
    for motif in SIGNATURE_MOTIFS + DENSE_MOTIFS:
        query = CountQuery(motif)
        matches = len(succinct.query(query, cache=False))
        t_succinct = _timed(lambda: succinct.query(query, cache=False), reps=8)
        t_scan = _timed(lambda: uncompressed.query(query, cache=False), reps=8)
        t_legacy = _timed(lambda: succinct.query_legacy(query), reps=3)
        ratio = t_legacy / t_succinct
        if motif in SIGNATURE_MOTIFS:
            floored.append(ratio)
        rows.append(
            f"{motif:<8}{matches:>7}{t_succinct * 1e3:>11.2f}{t_scan * 1e3:>11.2f}"
            f"{t_legacy * 1e3:>11.2f}{ratio:>9.1f}x"
        )
        report.metric(f"count_speedup_{motif}", round(ratio, 2))
        report.metric(f"scan_parity_{motif}", round(t_scan / t_succinct, 2))
    report.table(
        f"{'motif':<8}{'hits':>7}{'succ ms':>11}{'scan ms':>11}{'legacy ms':>11}{'speedup':>10}",
        rows,
    )
    worst = min(floored)
    report.line(
        f"floored signature motifs: {', '.join(SIGNATURE_MOTIFS)}  "
        f"worst speedup {worst:.1f}x (floor {COUNT_SPEEDUP_FLOOR}x); dense "
        f"motifs share their match-materialization cost with the baseline "
        f"and are informational"
    )
    report.metric("count_speedup_min", round(worst, 2))
    assert worst >= COUNT_SPEEDUP_FLOOR, (
        f"succinct count queries must beat the grade scan by "
        f">={COUNT_SPEEDUP_FLOOR}x on signature motifs, got {worst:.1f}x"
    )


@pytest.mark.metrics("memory")
def test_kernel_level_comparison(databases, report):
    """Kernel-only view: bit-plane kernel vs DFA containment scan."""
    succinct, __ = databases
    store = succinct.store
    index = store.succinct_index()
    symbols = store.behavior_symbols
    counts = store.behavior_counts.astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
    rows = []
    for motif in SIGNATURE_MOTIFS:
        codes = np.array(
            [{"+": 1, "-": -1, "0": 0}[c] for c in motif], dtype=np.int8
        )
        t_bits = _timed(
            lambda: index.sequences_containing(codes, collapse_runs=True), reps=20
        )
        matcher = ColumnPatternMatcher.for_pattern(
            "(+|-|0)* " + " ".join(motif) + " (+|-|0)*"
        )
        t_dfa = _timed(
            lambda: matcher.fullmatch_column(symbols, starts, counts), reps=20
        )
        rows.append(
            f"{motif:<8}{t_bits * 1e6:>13.1f}{t_dfa * 1e6:>13.1f}"
            f"{t_dfa / t_bits:>9.1f}x"
        )
        report.metric(f"dfa_ratio_{motif}", round(t_dfa / t_bits, 2))
    report.table(
        f"{'motif':<8}{'bitplane us':>13}{'dfa us':>13}{'ratio':>10}", rows
    )


@pytest.mark.metrics("memory")
def test_position_queries_report(databases, report):
    succinct, __ = databases
    query = MotifQuery("+-+", collapse_runs=False)
    t_succinct = _timed(lambda: succinct.query(query, cache=False), reps=8)
    t_legacy = _timed(lambda: succinct.query_legacy(query), reps=3)
    report.line(
        f"POSITIONS OF '+-+' POSITIONAL: succinct {t_succinct * 1e3:.2f}ms, "
        f"grade scan {t_legacy * 1e3:.2f}ms ({t_legacy / t_succinct:.1f}x)"
    )
    report.metric("positions_speedup", round(t_legacy / t_succinct, 2))
