"""Figures 3-5: value-based matching vs feature-preserving transforms.

The paper's motivating table: a fixed two-peak exemplar (Figure 3), a
pointwise-fluctuated copy within +/- delta (Figure 4), and six
transformed two-peak variants (Figure 5).  Value-based matching accepts
only the fluctuated copy; the generalized approximate query accepts
exactly the sequences with two peaks — including every transform.
"""

from __future__ import annotations

from repro.baselines.euclidean import EpsilonMatcher
from repro.baselines.shift_scale import ShiftScaleMatcher
from repro.query import PatternQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import figure3_sequence, figure4_fluctuated, figure5_variants

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def test_fig3_5_matching_matrix(benchmark, report):
    exemplar = figure3_sequence()
    fluctuated = figure4_fluctuated(delta=1.0).with_name("figure-4-noisy")
    variants = figure5_variants(exemplar)
    candidates = [fluctuated] + [v for __, ___, v in variants]

    value_matcher = EpsilonMatcher(exemplar, epsilon=1.0, align="time")
    shift_scale = ShiftScaleMatcher(exemplar, epsilon=0.25)

    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert(exemplar.with_name("exemplar"))
    for candidate in candidates:
        db.insert(candidate)

    query = PatternQuery(GOALPOST)
    matches = benchmark(db.query, query)
    feature_hits = {m.name for m in matches}

    rows = []
    value_accepts = 0
    feature_accepts = 0
    for candidate in candidates:
        value_verdict = value_matcher.matches(candidate)
        ss_verdict = shift_scale.matches(candidate)
        feature_verdict = candidate.name in feature_hits
        value_accepts += value_verdict
        feature_accepts += feature_verdict
        rows.append(
            f"{candidate.name:<20} {str(value_verdict):>11} {str(ss_verdict):>12} {str(feature_verdict):>14}"
        )
    report.line("exemplar: figure-3 two-peak curve; eps=1 band")
    report.table(
        f"{'candidate':<20} {'value-based':>11} {'shift/scale':>12} {'feature-based':>14}",
        rows,
    )

    # Paper shape, quoted from Section 4.4: "The sequence depicted in
    # Figure 4 does not match the query pattern, while those depicted in
    # Figure 5 are all exact matches."  Value-based matching is the
    # mirror image: it accepts ONLY the figure-4 noisy copy.
    assert value_matcher.matches(fluctuated)
    assert value_accepts == 1
    assert "figure-4-noisy" not in feature_hits
    variant_names = {v.name for __, ___, v in variants}
    assert variant_names <= feature_hits
    assert feature_accepts == len(variants)
    report.line(
        f"\nvalue-based accepts {value_accepts}/{len(candidates)} (only the noisy copy); "
        f"feature-based accepts all {feature_accepts} transforms and rejects the noisy copy — "
        f"exactly the paper's Figure 4 vs Figure 5 split"
    )
