"""Figure 7: three transformed two-peak sequences break consistently.

The paper shows three different two-peak sequences, each broken at its
extrema, all matching the goal-post query.  This benchmark applies
distinct transformations to a two-peak exemplar, breaks each variant,
and verifies that every one yields the same collapsed behaviour string
and exactly two peaks (the breaker's *consistency* property).
"""

from __future__ import annotations

from repro.core.features import count_peaks
from repro.core.transformations import AmplitudeScale, Compose, TimeScale, TimeShift
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever


def test_fig7_consistent_breaking_across_transforms(benchmark, report):
    exemplar = goalpost_fever(noise=0.0)
    transforms = {
        "original": None,
        "shifted(+3h, x1.4)": Compose([TimeShift(3.0), AmplitudeScale(1.4, baseline=98.0)]),
        "dilated(x2)": TimeScale(2.0),
        "contracted(x0.5) scaled": Compose([TimeScale(0.5), AmplitudeScale(1.8, baseline=98.0)]),
    }
    sequences = {
        label: (transform(exemplar) if transform else exemplar)
        for label, transform in transforms.items()
    }

    breaker = InterpolationBreaker(epsilon=0.5)

    def break_all():
        return {label: breaker.represent(seq, curve_kind="regression") for label, seq in sequences.items()}

    reps = benchmark(break_all)

    rows = []
    signatures = set()
    for label, rep in reps.items():
        collapsed = rep.symbol_string(0.01, collapse_runs=True)
        peaks = count_peaks(rep, 0.01)
        signatures.add(collapsed.strip("0"))
        rows.append(f"{label:<26} {len(rep):>8} {collapsed:<12} {peaks:>6}")
    report.table(f"{'variant':<26} {'segments':>8} {'symbols':<12} {'peaks':>6}", rows)

    # Consistency: every variant reduces to the same rise/fall behaviour
    # and exactly two peaks.
    assert all(count_peaks(rep, 0.01) == 2 for rep in reps.values())
    assert len(signatures) == 1, signatures
    report.line("\nall variants collapse to the same behaviour signature "
                f"{signatures.pop()!r} with exactly two peaks")
