"""Section 6 future work, realized: features from compressed data.

"Currently we are experimenting with multiresolution analysis and
applying the wavelet transform for compressing the sequences in a way
that allows extracting features from the compressed data rather than
from the original sequences."  This benchmark measures exactly that:
peak recall and feature-extraction cost at each pyramid level.
"""

from __future__ import annotations

import time


from repro.core.features import raw_peak_indices
from repro.preprocessing import MultiresolutionPyramid
from repro.segmentation import InterpolationBreaker
from repro.workloads import synthetic_ecg


def test_features_from_coarse_levels(benchmark, report):
    ecgs = [
        synthetic_ecg(rr_intervals=[136, 176], n_points=512, noise=0.5, seed=s, name=f"ecg-{s}")
        for s in range(8)
    ]

    benchmark(MultiresolutionPyramid.build, ecgs[0], 2, "haar")

    rows = []
    recalls = {}
    for level in (0, 1, 2):
        found = 0
        expected = 0
        elapsed = 0.0
        samples = 0
        for ecg in ecgs:
            pyramid = MultiresolutionPyramid.build(ecg, depth=level, wavelet="haar")
            coarse = pyramid.level(level)
            samples += len(coarse)
            truth = raw_peak_indices(ecg, prominence=100.0)
            prominence = 100.0 / (1.6**level)  # local averaging shrinks spikes
            start = time.perf_counter()
            peaks = raw_peak_indices(coarse, prominence=prominence)
            elapsed += time.perf_counter() - start
            expected += len(truth)
            # A coarse peak counts when it lands within 2 coarse samples
            # of a true R peak time.
            for r in truth:
                r_time = ecg.times[r]
                if any(abs(coarse.times[p] - r_time) <= 2 * 2**level + 2 for p in peaks):
                    found += 1
        recalls[level] = found / expected
        rows.append(
            f"{level:>6} {samples // len(ecgs):>9} {2**level:>7}x "
            f"{recalls[level]:>8.2f} {elapsed * 1e3:>10.2f}"
        )
    report.line("R-peak recall from multiresolution approximations (8 ECGs x 512 points):")
    report.table(f"{'level':>6} {'samples':>9} {'compr':>8} {'recall':>8} {'scan ms':>10}", rows)

    # Paper shape: features remain extractable from compressed data —
    # full recall at the base, and still full recall two levels (4x
    # fewer samples) up.
    assert recalls[0] == 1.0
    assert recalls[2] == 1.0
    report.line("\nR peaks fully recoverable at 4x compression — features from compressed data")


def test_breaking_cost_shrinks_with_level(benchmark, report):
    ecg = synthetic_ecg(rr_intervals=[136, 176], n_points=512, noise=0.5, seed=77)
    pyramid = MultiresolutionPyramid.build(ecg, depth=2, wavelet="haar")
    breaker = InterpolationBreaker(10.0)

    benchmark(breaker.break_indices, pyramid.level(2))

    rows = []
    times = {}
    for level in (0, 1, 2):
        seq = pyramid.level(level)
        start = time.perf_counter()
        for __ in range(20):
            bounds = breaker.break_indices(seq)
        times[level] = (time.perf_counter() - start) / 20
        rows.append(f"{level:>6} {len(seq):>9} {len(bounds):>10} {times[level] * 1e3:>10.3f}")
    report.table(f"{'level':>6} {'samples':>9} {'segments':>10} {'break ms':>10}", rows)
    assert times[2] < times[0]
    report.line(f"\nbreaking at level 2 is {times[0] / times[2]:.1f}x cheaper than at the base")
