"""Section 7 ablation: preprocessing before breaking.

The paper filters (noise elimination), normalizes (mean 0 / variance 1,
removing linear transforms), and experiments with wavelet compression
that preserves features.  This benchmark quantifies each step's effect
on the segmentation and on query answers.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import count_peaks
from repro.preprocessing import compress_wavelet, median_filter, moving_average, znormalize
from repro.segmentation import InterpolationBreaker
from repro.workloads import goalpost_fever


def test_filtering_before_breaking(benchmark, report):
    noisy = goalpost_fever(noise=0.6, seed=71)
    breaker = InterpolationBreaker(epsilon=0.5)

    benchmark(lambda: breaker.break_indices(moving_average(noisy, 3)))

    variants = {
        "raw (noise 0.6)": noisy,
        "moving average(3)": moving_average(noisy, 3),
        "median(3)": median_filter(noisy, 3),
        "moving average(5)": moving_average(noisy, 5),
    }
    rows = []
    segment_counts = {}
    for label, seq in variants.items():
        rep = breaker.represent(seq, curve_kind="regression")
        segment_counts[label] = len(rep)
        rows.append(f"{label:<20} {len(rep):>9} {count_peaks(rep, 0.05):>6}")
    report.line("filtering ablation (two-peak curve, uniform noise 0.6, eps=0.5):")
    report.table(f"{'preprocessing':<20} {'segments':>9} {'peaks':>6}", rows)

    # Shape: smoothing reduces the segment count and both smoothed
    # variants still find the two peaks.
    assert segment_counts["moving average(3)"] <= segment_counts["raw (noise 0.6)"]
    assert count_peaks(breaker.represent(variants["moving average(3)"]), 0.05) == 2


def test_normalization_removes_linear_transforms(benchmark, report):
    base = goalpost_fever(noise=0.0)
    scaled = goalpost_fever(noise=0.0)
    scaled_values = 2.5 * scaled.values - 100.0
    from repro.core.sequence import Sequence

    transformed = Sequence(scaled.times, scaled_values, name="scaled")

    benchmark(znormalize, base)

    norm_base = znormalize(base)
    norm_transformed = znormalize(transformed)
    max_diff = float(np.abs(norm_base.values - norm_transformed.values).max())
    report.line(f"max |z(base) - z(2.5*base - 100)| = {max_diff:.2e}")
    assert max_diff < 1e-9

    # After normalization a single epsilon works across both; the same
    # breaker finds the same breakpoints.
    breaker = InterpolationBreaker(epsilon=0.1)
    assert breaker.break_indices(norm_base) == breaker.break_indices(norm_transformed)
    report.line("identical breakpoints after normalization — the paper's robustness argument")


def test_wavelet_compression_preserves_features(benchmark, report):
    seq = goalpost_fever(noise=0.1, seed=72, n_points=48)
    breaker = InterpolationBreaker(epsilon=0.5)

    benchmark(compress_wavelet, seq, 0.25, "db4")

    rows = []
    for keep in (1.0, 0.5, 0.25, 0.15):
        comp = compress_wavelet(seq, keep_fraction=keep, wavelet="db4")
        recon = comp.reconstruct()
        rep = breaker.represent(recon, curve_kind="regression")
        err = float(np.abs(recon.values - seq.values).max())
        rows.append(
            f"{keep:>6.2f} {comp.compression_ratio:>8.1f}x {err:>10.3f} {count_peaks(rep, 0.05):>6}"
        )
    report.line("wavelet (db4) compression of the two-peak curve:")
    report.table(f"{'keep':>6} {'ratio':>9} {'max err':>10} {'peaks':>6}", rows)

    # Shape: down to 25% of coefficients the two peaks survive.
    comp = compress_wavelet(seq, keep_fraction=0.25, wavelet="db4")
    rep = breaker.represent(comp.reconstruct(), curve_kind="regression")
    assert count_peaks(rep, 0.05) == 2
