"""Ablation: representation curve at fixed breakpoints.

The paper breaks with the interpolation line but *represents* with the
regression line ("the byproduct functions were interpolation lines, but
the ones used for representation were regression lines").  This
ablation quantifies that choice: same breakpoints, different stored
curve families.
"""

from __future__ import annotations

import numpy as np

from repro.segmentation import InterpolationBreaker
from repro.workloads import figure9_pair, goalpost_fever


def test_representation_kind_at_fixed_breaks(benchmark, report):
    fever = goalpost_fever(noise=0.3, seed=91)
    top, __ = figure9_pair()
    breaker = InterpolationBreaker(0.5)
    breaker_ecg = InterpolationBreaker(10.0)

    benchmark(breaker.represent, fever, "regression")

    rows = []
    stats = {}
    for data_label, seq, brk in (("fever", fever, breaker), ("ecg", top, breaker_ecg)):
        base = brk.represent(seq, curve_kind="interpolation")
        for kind in ("interpolation", "regression", "poly:2", "bezier"):
            rep = base.refit(seq, kind)
            max_err = rep.reconstruction_error(seq)
            rmse = float(
                np.sqrt(
                    np.mean(
                        [
                            seg.function.rmse(seq.subsequence(seg.start_index, seg.end_index)) ** 2
                            for seg in rep
                        ]
                    )
                )
            )
            params = rep.parameter_count("full")
            stats[(data_label, kind)] = (max_err, rmse)
            rows.append(f"{data_label:<8} {kind:<14} {max_err:>10.3f} {rmse:>10.3f} {params:>8}")
    report.line("representation curve ablation at interpolation breakpoints:")
    report.table(f"{'data':<8} {'curve kind':<14} {'max err':>10} {'rmse':>10} {'params':>8}", rows)

    for data_label in ("fever", "ecg"):
        # Regression minimizes squared error, so its RMSE never exceeds
        # the interpolation line's RMSE at the same breakpoints.
        assert stats[(data_label, "regression")][1] <= stats[(data_label, "interpolation")][1] + 1e-9
        # Higher-capacity families fit at least as tightly on RMSE.
        assert stats[(data_label, "poly:2")][1] <= stats[(data_label, "regression")][1] + 1e-9
    report.line("\nregression <= interpolation on RMSE at fixed breaks — the paper's choice quantified")
