"""Section 5.2 compression claim: 500-point ECGs -> ~20 segments -> ~8x.

"Figure 9 illustrates the efficiency of representation ... 500 points
sequences are represented by about 20 function segments.  Assuming each
representation requires 3 parameters ... about a factor of 8 reduction
in space."  This benchmark sweeps the breaking tolerance epsilon and
reports segments per ECG, the paper-convention factor, the honest byte
factor, and reconstruction fidelity.
"""

from __future__ import annotations


from repro.segmentation import InterpolationBreaker
from repro.storage.serialization import raw_size_bytes, representation_size_bytes
from repro.workloads import ecg_corpus


def test_compression_epsilon_sweep(benchmark, report):
    corpus = ecg_corpus(n_sequences=12, seed=41)

    breaker_at_10 = InterpolationBreaker(epsilon=10.0)
    benchmark(lambda: [breaker_at_10.represent(seq, curve_kind="regression") for seq in corpus])

    rows = []
    factor_at_10 = None
    for epsilon in (2.0, 5.0, 10.0, 20.0, 40.0):
        breaker = InterpolationBreaker(epsilon=epsilon)
        segments = 0
        points = 0
        rep_bytes = 0
        raw_bytes = 0
        worst_error = 0.0
        for seq in corpus:
            rep = breaker.represent(seq, curve_kind="interpolation")
            segments += len(rep)
            points += len(seq)
            rep_bytes += representation_size_bytes(rep)
            raw_bytes += raw_size_bytes(seq)
            worst_error = max(worst_error, rep.reconstruction_error(seq))
        paper_factor = points / (3 * segments)
        byte_factor = raw_bytes / rep_bytes
        if epsilon == 10.0:
            factor_at_10 = paper_factor
            segments_at_10 = segments / len(corpus)
        rows.append(
            f"{epsilon:>6.0f} {segments / len(corpus):>12.1f} {paper_factor:>14.1f} "
            f"{byte_factor:>12.2f} {worst_error:>12.2f}"
        )
    report.line(f"corpus: {len(corpus)} ECGs x 500 points; breaking tolerance sweep")
    report.table(
        f"{'eps':>6} {'segs/ECG':>12} {'paper factor':>14} {'byte factor':>12} {'max error':>12}",
        rows,
    )

    # Paper shape at eps=10: tens of segments, factor in the 4-12x band
    # (the paper reports ~20 segments and ~8x on its smoother data), and
    # reconstruction error bounded by the tolerance.
    assert 10 <= segments_at_10 <= 45
    assert 3.0 <= factor_at_10 <= 12.0
    report.line(f"\nat eps=10: {segments_at_10:.1f} segments/ECG, "
                f"paper-convention factor {factor_at_10:.1f}x "
                f"(paper: ~20 segments, ~8x)")

    # Monotonicity: coarser tolerance -> fewer segments -> higher factor.
    factors = [float(r.split()[2]) for r in rows]
    assert factors == sorted(factors)
