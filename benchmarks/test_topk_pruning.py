"""Top-k pruned search vs full-grade-then-sort, with a CI-enforced floor.

The cluster-representative index must answer k-nearest queries at least
``TOPK_SPEEDUP_FLOOR``x faster than the vectorized full scan (grade
every sequence's profile, sort, cut at k) on a 10k-sequence
server-metrics corpus — while returning the *identical* ranked answer,
which every probe asserts.  Both sides run the same distance kernel, so
the ratio measures pruning alone, not kernel tricks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.clustering import N_FEATURES
from repro.query import SequenceDatabase
from repro.segmentation.online import IncrementalRegressionBreaker
from repro.workloads import server_metrics_corpus

TOPK_SPEEDUP_FLOOR = 5.0

N_SEQUENCES = 10_000
POOL_SIZE = 500  # distinct broken traces; replicas share a representation
K = 10
N_PROBES = 8


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _corpus_db():
    breaker = IncrementalRegressionBreaker(0.5)
    pool = [
        breaker.represent(seq)
        for seq in server_metrics_corpus(n_sequences=POOL_SIZE, n_families=16, seed=29)
    ]
    db = SequenceDatabase(breaker=IncrementalRegressionBreaker(0.5), keep_raw=False)
    for i in range(N_SEQUENCES):
        db.insert_representation(pool[i % POOL_SIZE], name=f"metrics-{i}")
    return db


def _full_scan_topk(index, query_features, k):
    """The honest baseline: grade every profile, sort, cut at k —
    same kernel, same (distance, id) order as the pruned path."""
    ids, distances = index.all_distances(query_features)
    order = np.lexsort((ids, distances))[:k]
    return [(float(distances[i]), int(ids[i])) for i in order]


def test_topk_pruning_speedup(report):
    build_start = time.perf_counter()
    db = _corpus_db()
    ingest_s = time.perf_counter() - build_start

    index_start = time.perf_counter()
    index = db.store.cluster_index()
    index_s = time.perf_counter() - index_start

    rng = np.random.default_rng(7)
    probe_ids = rng.choice(db.ids(), size=N_PROBES, replace=False)
    probes = [
        index.features_of(int(sequence_id))
        + rng.normal(scale=2.0, size=N_FEATURES)
        for sequence_id in probe_ids
    ]

    full_times, pruned_times, pruned_fractions = [], [], []
    for query_features in probes:
        expected = _full_scan_topk(index, query_features, K)
        got = index.topk(query_features, K)
        assert got == expected  # identical ranked answer, every probe
        full_times.append(_best_of(lambda: _full_scan_topk(index, query_features, K)))
        pruned_times.append(_best_of(lambda: index.topk(query_features, K)))
        pruned_fractions.append(index.report()["last_pruned_fraction"])

    full_s = float(np.median(full_times))
    pruned_s = float(np.median(pruned_times))
    speedup = full_s / pruned_s

    stats = index.report()
    report.line(
        f"top-{K} over {N_SEQUENCES} sequences "
        f"({POOL_SIZE} distinct profiles, {stats['representatives']} clusters)"
    )
    report.line(f"ingest: {ingest_s:.2f} s, cluster-index build: {index_s * 1e3:.1f} ms")
    report.line(f"full grade-then-sort:  {full_s * 1e6:>9.1f} us/query (median of {N_PROBES} probes)")
    report.line(f"pruned topk:           {pruned_s * 1e6:>9.1f} us/query")
    report.line(
        f"pruned fraction: {min(pruned_fractions):.3f}..{max(pruned_fractions):.3f} "
        f"of rows never refined"
    )
    report.line(f"speedup: {speedup:.1f}x  (floor {TOPK_SPEEDUP_FLOOR:.0f}x)")
    assert min(pruned_fractions) > 0.5
    assert speedup >= TOPK_SPEEDUP_FLOOR
