"""Section 4.4: the goal-post fever query over a mixed corpus.

Benchmarks the regular-expression query over the slope alphabet on a
corpus of 1/2/3-peak temperature logs, scoring precision and recall
against the generator's ground truth and sweeping the flatness
threshold theta (the paper: "the correctness of the results depends on
theta ... and the distance tolerated").
"""

from __future__ import annotations

from repro.core.features import count_peaks_in_symbols
from repro.query import PatternQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import fever_corpus

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def score(db, matches):
    found = {m.name for m in matches}
    positives = {db.name_of(i) for i in db.ids() if "2p" in db.name_of(i)}
    negatives = {db.name_of(i) for i in db.ids()} - positives
    tp = len(found & positives)
    fp = len(found & negatives)
    fn = len(positives - found)
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)
    return precision, recall


def test_goalpost_pattern_query(benchmark, report):
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=25, n_one_peak=15, n_three_peak=15, noise=0.15))

    # cache=False so every timed iteration evaluates the pattern instead
    # of hitting the plan-result cache.
    matches = benchmark(db.query, PatternQuery(GOALPOST), cache=False)

    precision, recall = score(db, matches)
    report.line(f"corpus: {len(db)} temperature logs (25 two-peak / 15 one-peak / 15 three-peak)")
    report.line(f"query {GOALPOST!r}: {len(matches)} matches")
    report.line(f"precision={precision:.3f} recall={recall:.3f}")
    # Shape: near-perfect classification through the representation.
    assert precision >= 0.95
    assert recall >= 0.9

    # Every match is an exact member of the query's equivalence class.
    assert all(m.is_exact for m in matches)


def test_goalpost_theta_sensitivity(benchmark, report):
    corpus = fever_corpus(n_two_peak=15, n_one_peak=10, n_three_peak=10, noise=0.15, seed=9)

    def classify_at(theta):
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5), theta=theta)
        db.insert_all(corpus)
        return db, db.query(PatternQuery(GOALPOST))

    __, ___ = benchmark(classify_at, 0.05)

    rows = []
    for theta in (0.0, 0.02, 0.05, 0.2, 1.0, 5.0):
        db, matches = classify_at(theta)
        precision, recall = score(db, matches)
        rows.append(f"{theta:>6.2f} {len(matches):>8} {precision:>10.2f} {recall:>8.2f}")
    report.line("theta sensitivity (slope-flatness threshold of the symbol alphabet):")
    report.table(f"{'theta':>6} {'matches':>8} {'precision':>10} {'recall':>8}", rows)

    # Shape: moderate theta classifies well; an absurdly large theta
    # flattens every slope and kills recall.
    db_mid, matches_mid = classify_at(0.05)
    __, matches_huge = classify_at(5.0)
    p_mid, r_mid = score(db_mid, matches_mid)
    assert p_mid >= 0.9 and r_mid >= 0.85
    assert len(matches_huge) == 0


def test_goalpost_symbol_counting_agrees(benchmark, report):
    """The symbolic peak counter and the pattern query agree on the
    collapsed behaviour strings."""
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(fever_corpus(n_two_peak=10, n_one_peak=5, n_three_peak=5, noise=0.1, seed=4))

    def cross_check():
        agreements = 0
        for sequence_id in db.ids():
            symbols = db.behavior_index.symbols_of(sequence_id)
            by_symbols = count_peaks_in_symbols(symbols) == 2
            by_pattern = PatternQuery(GOALPOST).grade(db, sequence_id).is_exact
            agreements += by_symbols == by_pattern
        return agreements

    agreements = benchmark(cross_check)
    report.line(f"symbol-count vs pattern-query agreement: {agreements}/{len(db)}")
    assert agreements == len(db)
