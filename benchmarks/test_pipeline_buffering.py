"""IngestPipeline buffering: the NumPy block front door vs per-add calls.

Micro-benchmark for the PR 4 follow-on: buffering a same-grid batch
through ``IngestPipeline.add_block`` (one block validation, zero-copy
row views, bulk buffer extension) must beat constructing and adding one
``Sequence`` at a time.  Measured at the buffering layer only — the
flush path is identical for both and dominated by breaking, which has
its own floors in ``test_ingest_breaking_scaling.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.sequence import Sequence
from repro.query import SequenceDatabase
from repro.segmentation import InterpolationBreaker

BUFFER_SPEEDUP_FLOOR = 2.5
N_SEQUENCES = 3_000
N_SAMPLES = 64


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_block_buffering_speedup(report):
    rng = np.random.default_rng(7)
    block = rng.normal(0.0, 1.0, (N_SEQUENCES, N_SAMPLES))
    rows = [np.array(row) for row in block]

    def scalar_path():
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        pipeline = db.ingest_pipeline(batch_size=10 * N_SEQUENCES)
        for row in rows:
            pipeline.add(Sequence.from_values(row))
        assert pipeline.pending == N_SEQUENCES

    def block_path():
        db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        pipeline = db.ingest_pipeline(batch_size=10 * N_SEQUENCES)
        pipeline.add_block(block)
        assert pipeline.pending == N_SEQUENCES

    scalar_s = _best_of(scalar_path)
    block_s = _best_of(block_path)
    speedup = scalar_s / block_s

    report.line(f"buffering {N_SEQUENCES} x {N_SAMPLES}-point sequences")
    report.line(f"per-sequence add():   {scalar_s * 1e3:>9.3f} ms")
    report.line(f"add_block():          {block_s * 1e3:>9.3f} ms")
    report.line(f"speedup: {speedup:.1f}x  (floor {BUFFER_SPEEDUP_FLOOR:.1f}x)")
    assert speedup >= BUFFER_SPEEDUP_FLOOR

    # Both buffers flush to identical database state (spot check).
    db_a = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    with db_a.ingest_pipeline() as pipeline:
        for row in rows[:20]:
            pipeline.add(Sequence.from_values(row))
    db_b = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    with db_b.ingest_pipeline() as pipeline:
        pipeline.add_block(block[:20])
    assert db_a.ids() == db_b.ids()
    for sequence_id in db_a.ids():
        assert np.array_equal(
            db_a.raw_sequence(sequence_id).values, db_b.raw_sequence(sequence_id).values
        )
