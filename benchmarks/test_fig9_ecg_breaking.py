"""Figure 9: two 500-point ECG segments broken with distance eps=10.

The paper's figure shows both ECGs broken by the interpolation
algorithm, the prominent R peaks falling on segment boundaries, and the
segment functions (near-flat baselines vs steep R flanks).  This
benchmark regenerates the segment tables and times the breaking of one
500-point ECG.
"""

from __future__ import annotations


from repro.core.features import raw_peak_indices
from repro.segmentation import InterpolationBreaker, is_partition
from repro.workloads import figure9_pair


def test_fig9_ecg_breaking(benchmark, report):
    top, bottom = figure9_pair()
    breaker = InterpolationBreaker(epsilon=10.0)

    rep_top = benchmark(breaker.represent, top, "regression")
    rep_bottom = breaker.represent(bottom, curve_kind="regression")

    for name, seq, rep in (("top", top, rep_top), ("bottom", bottom, rep_bottom)):
        boundaries = [(s.start_index, s.end_index) for s in rep]
        assert is_partition(boundaries, len(seq))
        r_peaks = raw_peak_indices(seq, prominence=100.0)
        report.line(f"\nECG {name}: n={len(seq)}, eps=10 -> {len(rep)} segments; "
                    f"R peaks at {r_peaks}")
        steep = [s for s in rep if abs(s.mean_slope()) > 10.0]
        report.table(
            f"{'indices':<14} {'function':<22} {'slope':>9}",
            [
                f"[{s.start_index:>3}..{s.end_index:>3}]    {s.function.format_equation():<22} {s.mean_slope():>9.2f}"
                for s in rep
                if abs(s.mean_slope()) > 10.0 or s.point_count > 25
            ],
        )
        # Shape assertions: every R peak near a boundary; steep flanks exist
        # (the paper's 21.3 / -14.8 style slopes vs 0.096 baselines).
        boundary_points = {b for se in boundaries for b in se}
        for r in r_peaks:
            assert any(abs(r - b) <= 2 for b in boundary_points), f"R at {r} missed in {name}"
        assert len(steep) >= 2 * len(r_peaks) - 1
        flat = [s for s in rep if abs(s.mean_slope()) < 1.0]
        assert flat, "baseline stretches should fit near-flat lines"

    # Paper ballpark: ~10-45 segments per 500-point ECG at eps=10.
    assert 8 <= len(rep_top) <= 45
    assert 8 <= len(rep_bottom) <= 45
