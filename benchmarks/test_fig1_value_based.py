"""Figure 1: the prior, value-based notion of approximate queries.

A query sequence plus a distance epsilon defines a band; stored
sequences within the band match.  This benchmark reproduces the figure
as a table of candidate distances and measures the cost of the linear
epsilon scan the notion implies.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.euclidean import EpsilonMatcher
from repro.core.sequence import Sequence
from repro.core.transformations import BoundedNoise


def build_corpus(n=200, length=64, seed=101):
    rng = np.random.default_rng(seed)
    exemplar = Sequence.from_values(np.sin(np.linspace(0, 4 * np.pi, length)), name="query")
    corpus = []
    for i in range(n):
        bound = float(rng.uniform(0.05, 2.0))
        corpus.append(BoundedNoise(bound, seed=i)(exemplar).with_name(f"cand-{i}-d{bound:.2f}"))
    return exemplar, corpus


def test_fig1_epsilon_band_scan(benchmark, report):
    exemplar, corpus = build_corpus()
    epsilon = 0.5
    matcher = EpsilonMatcher(exemplar, epsilon=epsilon, metric="linf")

    hits = benchmark(matcher.filter, corpus)

    inside = [c for c in corpus if matcher.distance(c) <= epsilon]
    assert hits == inside
    assert 0 < len(hits) < len(corpus)

    report.line(f"value-based query: band half-width eps={epsilon}, {len(corpus)} stored sequences")
    report.table(
        f"{'candidate':<16} {'L-inf distance':>14} {'within band':>12}",
        [
            f"{c.name:<16} {matcher.distance(c):>14.3f} {str(matcher.distance(c) <= epsilon):>12}"
            for c in corpus[:10]
        ],
    )
    report.line(f"... {len(hits)}/{len(corpus)} candidates inside the band")
