"""Delta revalidation and streaming append vs their from-scratch twins.

Two floors, both recorded under ``benchmarks/results/`` and enforced in
CI:

* **Delta revalidation ≥ 10x** — a warm cached answer over a corpus
  where each round dirties ≤ 1% of the sequences must re-validate (via
  the mutation journal + subset re-grade) at least 10x faster than a
  full cold evaluation of the same query, while returning byte-identical
  matches.

* **Streaming append ≥ 3x** — extending a live sequence through
  ``db.append`` (suffix-only rescan with an online breaker, incremental
  index maintenance, columnar splice) must beat the delete + re-insert
  detour by at least 3x on ECG-scale sequences.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.sequence import Sequence
from repro.query import SequenceDatabase, ShapeQuery
from repro.segmentation import InterpolationBreaker
from repro.segmentation.online import IncrementalRegressionBreaker

DELTA_SPEEDUP_FLOOR = 10.0
APPEND_SPEEDUP_FLOOR = 3.0

N_SEQUENCES = 30_000
DIRTY_PER_ROUND = 60  # 0.2% of the corpus (floor requires <= 1%)
ROUNDS = 5


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _piecewise(slopes, points_per_piece, name=""):
    values = [0.0]
    for slope, n_points in zip(slopes, points_per_piece):
        for __ in range(n_points):
            values.append(values[-1] + slope)
    values = np.asarray(values)
    return Sequence(np.arange(len(values), dtype=float), values, name=name)


def _pool(pool_size: int = 60):
    """Pre-broken pool: 1/3 two-peak curves sharing one behavioural
    structure with jittered profiles (every replica survives the shape
    prefilter and must be profile-graded — the grade-heavy workload of
    the shard benchmark), the rest one- and three-peak shapes."""
    breaker = InterpolationBreaker(0.05)
    pool = []
    for i in range(pool_size):
        if i % 3 == 0:
            slopes = [2.0 + 0.05 * (i % 7), -1.5, 1.0, -2.5 + 0.04 * (i % 5)]
            points = [5 + i % 3, 6, 5, 7]
        elif i % 3 == 1:
            slopes = [1.8, -2.2]
            points = [8, 9 + i % 4]
        else:
            slopes = [2.0, -1.0, 1.5, -1.8, 1.2, -2.0]
            points = [4, 4, 4 + i % 3, 4, 4, 4]
        pool.append(
            breaker.represent(_piecewise(slopes, points, name=f"pool-{i}"), curve_kind="regression")
        )
    return pool


def test_delta_revalidation_speedup(report):
    pool = _pool()
    db = SequenceDatabase(breaker=InterpolationBreaker(0.05), keep_raw=False)
    for i in range(N_SEQUENCES):
        db.insert_representation(pool[i % len(pool)], name=f"seq-{i}")

    # A third of the corpus shares the exemplar's behavioural structure:
    # every full evaluation must profile-grade ~10k candidates, while a
    # delta revalidation re-grades only the journal-dirty ids.
    query = ShapeQuery(pool[0], duration_tolerance=0.01, amplitude_tolerance=0.01)
    warm = db.query(query)
    assert warm  # the exemplar's own replicas match

    full_s = _best_of(lambda: db.query(query, cache=False))

    delta_times = []
    for round_index in range(ROUNDS):
        for j in range(DIRTY_PER_ROUND):
            db.insert_representation(
                pool[j % len(pool)], name=f"r{round_index}-{j}"
            )
        start = time.perf_counter()
        delta = db.query(query)
        delta_times.append(time.perf_counter() - start)
        assert delta == db.query(query, cache=False)  # byte-identical
    delta_s = min(delta_times)

    stats = db.result_cache.stats()
    assert stats["delta_hits"] == ROUNDS
    assert stats["delta_fallbacks"] == 0

    speedup = full_s / delta_s
    dirty_fraction = DIRTY_PER_ROUND / N_SEQUENCES
    report.line(
        f"grade-heavy shape query over {N_SEQUENCES} sequences, "
        f"{DIRTY_PER_ROUND} dirty per round ({dirty_fraction:.2%})"
    )
    report.line(f"full cold evaluation:  {full_s * 1e3:>9.3f} ms")
    report.line(f"delta revalidation:    {delta_s * 1e3:>9.3f} ms (best of {ROUNDS} rounds)")
    report.line(f"speedup: {speedup:.1f}x  (floor {DELTA_SPEEDUP_FLOOR:.0f}x)")
    report.line(f"cache stats: {stats}")
    assert speedup >= DELTA_SPEEDUP_FLOOR


N_STREAMS = 40
STREAM_LENGTH = 2_500
APPEND_SAMPLES = 20
APPEND_OPS = 10


def _streams(rng):
    t = np.arange(STREAM_LENGTH + APPEND_SAMPLES, dtype=float)
    sequences = []
    for i in range(N_STREAMS):
        values = 3.0 * np.sin(2 * np.pi * t / rng.uniform(40, 120)) + rng.normal(
            0.0, 0.1, len(t)
        )
        sequences.append(Sequence(t, values, name=f"stream-{i}"))
    return sequences


def test_streaming_append_speedup(report):
    rng = np.random.default_rng(42)
    full = _streams(rng)
    db = SequenceDatabase(breaker=IncrementalRegressionBreaker(0.4))
    db.insert_all([seq[:STREAM_LENGTH] for seq in full])

    append_ids = db.ids()[:APPEND_OPS]
    reinsert_ids = db.ids()[APPEND_OPS : 2 * APPEND_OPS]

    start = time.perf_counter()
    for sequence_id in append_ids:
        tail = full[sequence_id]
        db.append(
            sequence_id,
            tail.values[STREAM_LENGTH:],
            times=tail.times[STREAM_LENGTH:],
        )
    append_s = (time.perf_counter() - start) / APPEND_OPS

    start = time.perf_counter()
    for sequence_id in reinsert_ids:
        db.delete(sequence_id)
        db.insert(full[sequence_id])
    reinsert_s = (time.perf_counter() - start) / APPEND_OPS

    speedup = reinsert_s / append_s
    report.line(
        f"{APPEND_OPS} appends of {APPEND_SAMPLES} samples onto "
        f"{STREAM_LENGTH}-point streams ({N_STREAMS} live)"
    )
    report.line(f"delete + re-insert:   {reinsert_s * 1e3:>9.3f} ms/op")
    report.line(f"streaming append:     {append_s * 1e3:>9.3f} ms/op")
    report.line(f"speedup: {speedup:.1f}x  (floor {APPEND_SPEEDUP_FLOOR:.0f}x)")
    assert speedup >= APPEND_SPEEDUP_FLOOR
