"""Table 1: peaks information for the top ECG of Figure 9.

The paper's table lists, per peak, the rising function with its segment
start/end points and the descending function with its start/end points;
the R-R interval sequences are then derived as differences between
successive peak times.  This benchmark regenerates both.
"""

from __future__ import annotations


from repro.core.features import peak_table, raw_peak_indices, rr_intervals
from repro.segmentation import InterpolationBreaker
from repro.workloads import figure9_pair


def test_table1_peaks_information(benchmark, report):
    top, bottom = figure9_pair()
    breaker = InterpolationBreaker(epsilon=10.0)
    rep_top = breaker.represent(top, curve_kind="regression")
    rep_bottom = breaker.represent(bottom, curve_kind="regression")
    theta = 5.0

    rows = benchmark(peak_table, rep_top, theta)

    header = (
        f"{'Rising Function':>16}  {'RStart':>14} {'REnd':>14}  "
        f"{'Descending Fn':>16}  {'DStart':>14} {'DEnd':>14}"
    )
    report.line("peaks information for the top ECG (paper Table 1):")
    report.table(header, [row.format() for row in rows])

    # Shape: one row per R peak; rising slopes steeply positive,
    # descending steeply negative (paper: 21.3 / -14.8 and kin).
    truth = raw_peak_indices(top, prominence=100.0)
    assert len(rows) == len(truth) == 3
    for row in rows:
        rise_slope = (row.rise_end[1] - row.rise_start[1]) / max(row.rise_end[0] - row.rise_start[0], 1e-9)
        fall_slope = (row.descent_end[1] - row.descent_start[1]) / max(row.descent_end[0] - row.descent_start[0], 1e-9)
        assert rise_slope > 10.0
        assert fall_slope < -10.0

    # R-R interval sequences for both ECGs (the paper's derived lists).
    rr_top = rr_intervals(rep_top, theta)
    rr_bottom = rr_intervals(rep_bottom, theta)
    report.line(f"\nR-R sequence, top ECG   : {[int(v) for v in rr_top]}")
    report.line(f"R-R sequence, bottom ECG: {[int(v) for v in rr_bottom]}")
    assert rr_top.tolist() == [135.0, 175.0]
    assert rr_bottom.tolist() == [115.0, 135.0, 120.0]

    # The representation-level peaks coincide with raw ground truth.
    rep_peak_times = [0.5 * (r.rise_end[0] + r.descent_start[0]) for r in rows]
    for rep_time, raw_index in zip(rep_peak_times, truth):
        assert abs(rep_time - raw_index) <= 2.0
