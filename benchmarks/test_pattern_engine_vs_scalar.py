"""Vectorized pattern stage and result cache vs the scalar NFA loop.

Grows the database to n ∈ {100, 1k, 10k} sequences (reusing a pool of
pre-broken representations so ingest does not dominate) and times the
paper's goal-post fever PatternQuery three ways:

* **legacy** — the per-sequence Python NFA over the behaviour trie;
* **engine (cold)** — the tabulated DFA run across the columnar symbol
  store with NumPy, result cache bypassed;
* **engine (warm)** — the same query re-issued with the plan-result
  cache enabled, so the hit skips every stage.

At 10k sequences the vectorized stage must beat legacy by ≥5x and a
warm cache hit must beat legacy by ≥100x; a mutation must provably
invalidate the cache.  All paths must agree exactly at every size.
"""

from __future__ import annotations

import time

from repro.query import PatternQuery, SequenceDatabase
from repro.segmentation import InterpolationBreaker
from repro.workloads import k_peak_sequence

SIZES = [100, 1_000, 10_000]
VECTOR_SPEEDUP_FLOOR_AT_10K = 5.0
CACHED_SPEEDUP_FLOOR_AT_10K = 100.0
GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def _representation_pool(pool_size: int = 40):
    """Pre-broken fever-like curves; 1 in 8 is a two-peak goal-post match."""
    breaker = InterpolationBreaker(0.5)
    pool = []
    variants = [
        [12.0],
        [6.0, 18.0],  # the goal-post shape
        [4.0, 12.0, 20.0],
        [9.0],
        [5.0, 11.0, 17.0],
        [3.0],
        [8.0],
        [2.0, 9.0, 16.0],
    ]
    for i in range(pool_size):
        hours = variants[i % len(variants)]
        sequence = k_peak_sequence(hours, noise=0.3, seed=i, name=f"pool-{i}")
        pool.append(breaker.represent(sequence, curve_kind="regression"))
    return pool


def _database_of(n: int) -> SequenceDatabase:
    pool = _representation_pool()
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5), keep_raw=False)
    for i in range(n):
        db.insert_representation(pool[i % len(pool)], name=f"seq-{i}")
    return db


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_pattern_engine_vs_scalar(report):
    query = PatternQuery(GOALPOST)
    report.line("goal-post PatternQuery: scalar NFA loop vs DFA column stage vs cache")
    header = (
        f"{'n':>7} {'legacy ms':>10} {'engine ms':>10} {'warm ms':>10} "
        f"{'vector x':>9} {'cached x':>9}"
    )
    report.line(header)
    report.line("-" * len(header))
    vector_speedup_at_largest = 0.0
    cached_speedup_at_largest = 0.0
    for n in SIZES:
        db = _database_of(n)
        legacy_matches = db.query(query, engine=False)
        engine_matches = db.query(query, cache=False)
        assert engine_matches == legacy_matches, n
        legacy_s = _best_of(lambda: db.query(query, engine=False))
        engine_s = _best_of(lambda: db.query(query, cache=False))
        db.result_cache.clear()
        db.query(query)  # cold fill
        warm_matches = db.query(query)
        assert warm_matches == legacy_matches, n
        warm_s = _best_of(lambda: db.query(query))
        assert db.result_cache.hits >= 4  # every timed warm call hit
        vector_x = legacy_s / engine_s if engine_s > 0 else float("inf")
        cached_x = legacy_s / warm_s if warm_s > 0 else float("inf")
        if n == SIZES[-1]:
            vector_speedup_at_largest = vector_x
            cached_speedup_at_largest = cached_x
        report.line(
            f"{n:>7} {legacy_s * 1e3:>10.3f} {engine_s * 1e3:>10.3f} "
            f"{warm_s * 1e3:>10.3f} {vector_x:>8.1f}x {cached_x:>8.1f}x"
        )
    report.line()
    report.line(
        f"vectorized speedup at n={SIZES[-1]}: {vector_speedup_at_largest:.1f}x "
        f"(floor {VECTOR_SPEEDUP_FLOOR_AT_10K:.0f}x)"
    )
    report.line(
        f"cached speedup at n={SIZES[-1]}: {cached_speedup_at_largest:.1f}x "
        f"(floor {CACHED_SPEEDUP_FLOOR_AT_10K:.0f}x)"
    )
    assert vector_speedup_at_largest >= VECTOR_SPEEDUP_FLOOR_AT_10K
    assert cached_speedup_at_largest >= CACHED_SPEEDUP_FLOOR_AT_10K


def test_cache_invalidation_cost_and_correctness(report):
    """Cold vs warm vs post-insert re-query at 10k sequences."""
    n = SIZES[-1]
    db = _database_of(n)
    query = PatternQuery(GOALPOST)
    cold_start = time.perf_counter()
    cold_matches = db.query(query)
    cold_s = time.perf_counter() - cold_start
    warm_s = _best_of(lambda: db.query(query))
    db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="invalidator"))
    refresh_start = time.perf_counter()
    refreshed = db.query(query)
    refresh_s = time.perf_counter() - refresh_start
    assert len(refreshed) == len(cold_matches) + 1  # the insert is visible
    assert db.result_cache.invalidations >= 1
    report.line(f"cold/warm/post-insert re-query at n={n}")
    report.line(f"cold fill:            {cold_s * 1e3:>9.3f} ms")
    report.line(f"warm hit (best of 3): {warm_s * 1e3:>9.3f} ms")
    report.line(f"post-insert refresh:  {refresh_s * 1e3:>9.3f} ms")
    report.line(f"cache stats: {db.result_cache.stats()}")
    assert warm_s < cold_s
